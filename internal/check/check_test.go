package check

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
	"vdcpower/internal/power"
)

// failing is an invariant that always fires, for checker-mechanics tests.
type failing struct{}

func (failing) Name() string         { return "test/failing" }
func (failing) Check(ev Event) error { return errors.New("always") }

func TestCheckerRecordsAndCaps(t *testing.T) {
	c := New(failing{})
	for i := 0; i < maxViolations+50; i++ {
		c.Observe(Event{Kind: EvStep, Step: i})
	}
	if c.Events() != maxViolations+50 {
		t.Fatalf("Events() = %d, want %d", c.Events(), maxViolations+50)
	}
	if c.NumViolations() != maxViolations+50 {
		t.Fatalf("NumViolations() = %d, want %d", c.NumViolations(), maxViolations+50)
	}
	if len(c.Violations()) != maxViolations {
		t.Fatalf("stored %d violations, cap is %d", len(c.Violations()), maxViolations)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("Err() = nil with violations recorded")
	}
	if !strings.Contains(err.Error(), "and") || !strings.Contains(err.Error(), "test/failing") {
		t.Fatalf("Err() lacks summary: %v", err)
	}
}

func TestCheckerCleanRun(t *testing.T) {
	c := New(All()...)
	c.Observe(Event{Kind: EvStep, Step: 0})
	if err := c.Err(); err != nil {
		t.Fatalf("empty event stream violated invariants: %v", err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		EvInit: "init", EvStep: "step", EvConsolidate: "consolidate",
		EvWatchdog: "watchdog", EvPacking: "packing", Kind(99): "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: "a/b", Kind: EvStep, Step: 7, Detail: "boom"}
	if got := v.String(); got != "a/b [step step 7]: boom" {
		t.Fatalf("Violation.String() = %q", got)
	}
}

func TestObserveMinimumSlackCleanOnRealSearch(t *testing.T) {
	c := New(PackingInvariants()...)
	b := &packing.Bin{ID: "s1", CPUCap: 12, MemCap: 16}
	var items []packing.Item
	for i := 0; i < 8; i++ {
		items = append(items, packing.Item{ID: fmt.Sprintf("vm%d", i), CPU: 0.7 + 0.3*float64(i%5), Mem: 1})
	}
	cons := packing.VectorConstraint{}
	res := ObserveMinimumSlack(c, b, items, cons, packing.DefaultMinSlackConfig())
	if res.Slack < 0 {
		t.Fatalf("negative slack %v", res.Slack)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("real MinimumSlack run violated packing invariants: %v", err)
	}
	if c.Events() != 1 {
		t.Fatalf("expected one packing event, got %d", c.Events())
	}
	// Nil checker degenerates to a plain call.
	res2 := ObserveMinimumSlack(nil, b, items, cons, packing.DefaultMinSlackConfig())
	//lint:ignore floatcompare deterministic algorithm, identical inputs
	if res2.Slack != res.Slack {
		t.Fatalf("nil-checker result differs: %v vs %v", res2.Slack, res.Slack)
	}
}

func TestPolicyAuditorRecordsVerdicts(t *testing.T) {
	vm := &cluster.VM{ID: "v1", Demand: 1, MemoryGB: 2}
	from := cluster.NewServer("s1", power.TypeMid())
	to := cluster.NewServer("s2", power.TypeMid())

	aud := NewPolicyAuditor(optimizer.MinBenefit{Watts: 50})
	if aud.Name() != "min-benefit" {
		t.Fatalf("auditor name %q does not forward", aud.Name())
	}
	if aud.Allow(vm, from, to, 10) {
		t.Fatal("wrapped policy should deny 10 W benefit")
	}
	if aud.Denied() != 1 {
		t.Fatalf("Denied() = %d, want 1", aud.Denied())
	}
	// A later re-proposal with enough benefit supersedes the denial.
	if !aud.Allow(vm, from, to, 80) {
		t.Fatal("wrapped policy should allow 80 W benefit")
	}
	if aud.Denied() != 0 {
		t.Fatalf("Denied() = %d after allow, want 0", aud.Denied())
	}
	aud.Allow(vm, from, to, 10)
	aud.Reset()
	if aud.Denied() != 0 {
		t.Fatalf("Denied() = %d after Reset, want 0", aud.Denied())
	}
}

func TestVetoesRespectedCatchesOverriddenVeto(t *testing.T) {
	vm := &cluster.VM{ID: "v1", Demand: 1, MemoryGB: 2}
	from := cluster.NewServer("s1", power.TypeMid())
	to := cluster.NewServer("s2", power.TypeMid())

	aud := NewPolicyAuditor(optimizer.DenyAll{})
	inv := VetoesRespected(aud)
	aud.Allow(vm, from, to, 100) // denied and recorded
	rep := &optimizer.Report{Migrations: 1, Moves: []cluster.Migration{{VM: vm, From: from, To: to}}}
	if err := inv.Check(Event{Kind: EvConsolidate, Report: rep}); err == nil {
		t.Fatal("performed vetoed migration not caught")
	}
	// The denial log resets after each consolidate event: the same report
	// is clean on the next pass when no fresh denial was recorded.
	if err := inv.Check(Event{Kind: EvConsolidate, Report: rep}); err != nil {
		t.Fatalf("stale denial leaked across consolidate events: %v", err)
	}
	// Non-consolidate events are ignored.
	aud.Allow(vm, from, to, 100)
	if err := inv.Check(Event{Kind: EvStep, Report: rep}); err != nil {
		t.Fatalf("step event checked against vetoes: %v", err)
	}
}

func TestAllRegistryHasAtLeastEightInvariants(t *testing.T) {
	invs := All()
	if len(invs) < 8 {
		t.Fatalf("registry has %d invariants, acceptance floor is 8", len(invs))
	}
	seen := map[string]bool{}
	for _, inv := range invs {
		if inv.Name() == "" {
			t.Fatal("invariant with empty name")
		}
		if seen[inv.Name()] {
			t.Fatalf("duplicate invariant name %q", inv.Name())
		}
		seen[inv.Name()] = true
		if !strings.Contains(inv.Name(), "/") {
			t.Fatalf("invariant %q is not module-scoped", inv.Name())
		}
	}
}
