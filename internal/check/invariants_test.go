package check

import (
	"math"
	"strings"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
	"vdcpower/internal/power"
)

// testDC builds a two-server data center with two placed VMs.
func testDC(t *testing.T) (*cluster.DataCenter, []*cluster.VM) {
	t.Helper()
	s1 := cluster.NewServer("s1", power.TypeHighEnd())
	s2 := cluster.NewServer("s2", power.TypeMid())
	dc, err := cluster.NewDataCenter([]*cluster.Server{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	vms := []*cluster.VM{
		{ID: "v1", Demand: 2, MemoryGB: 4},
		{ID: "v2", Demand: 1, MemoryGB: 2},
	}
	if err := dc.Place(vms[0], s1); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(vms[1], s2); err != nil {
		t.Fatal(err)
	}
	return dc, vms
}

// findInvariant pulls one law out of the registry by name.
func findInvariant(t *testing.T, name string) Invariant {
	t.Helper()
	for _, inv := range All() {
		if inv.Name() == name {
			return inv
		}
	}
	t.Fatalf("invariant %q not registered", name)
	return nil
}

// Each test below first shows the invariant accepts a healthy state, then
// shows a deliberately broken mutation is caught.

func TestVMConservationCatchesLostVM(t *testing.T) {
	dc, vms := testDC(t)
	inv := findInvariant(t, "cluster/vm-conservation")
	if err := inv.Check(Event{Kind: EvInit, DC: dc}); err != nil {
		t.Fatalf("baseline event rejected: %v", err)
	}
	// A migration conserves the set.
	if _, err := dc.Migrate(vms[1], dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := inv.Check(Event{Kind: EvConsolidate, DC: dc}); err != nil {
		t.Fatalf("migration flagged as loss: %v", err)
	}
	// Mutation: drop a VM from the data center entirely.
	if err := dc.Remove(vms[0]); err != nil {
		t.Fatal(err)
	}
	err := inv.Check(Event{Kind: EvStep, DC: dc})
	if err == nil {
		t.Fatal("lost VM not caught")
	}
	if !strings.Contains(err.Error(), "v1") {
		t.Fatalf("diagnostic does not name the lost VM: %v", err)
	}
}

func TestVMConservationCatchesDuplicateID(t *testing.T) {
	dc, vms := testDC(t)
	inv := findInvariant(t, "cluster/vm-conservation")
	// Mutation: two hosted VMs sharing one ID (an index-corruption bug).
	vms[1].ID = "v1"
	if err := inv.Check(Event{Kind: EvInit, DC: dc}); err == nil {
		t.Fatal("duplicate VM ID not caught")
	}
}

func TestPStateValidCatchesOffTableFrequency(t *testing.T) {
	dc, _ := testDC(t)
	inv := findInvariant(t, "cluster/pstate-valid")
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err != nil {
		t.Fatalf("fresh servers rejected: %v", err)
	}
	dc.Servers[0].ApplyDVFS()
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err != nil {
		t.Fatalf("post-DVFS state rejected: %v", err)
	}
	// Mutation: shrink the P-state table under the server so its current
	// frequency is no longer a table entry.
	dc.Servers[0].Spec.PStates = []float64{9.9}
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err == nil {
		t.Fatal("off-table frequency not caught")
	}
}

func TestDVFSCoversDemandCatchesStarvedServer(t *testing.T) {
	dc, _ := testDC(t)
	inv := findInvariant(t, "cluster/dvfs-covers-demand")
	s1 := dc.Servers[0]
	big := &cluster.VM{ID: "v3", Demand: 7, MemoryGB: 1}
	if err := dc.Place(big, s1); err != nil {
		t.Fatal(err)
	}
	s1.ApplyDVFS()
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err != nil {
		t.Fatalf("arbitrated state rejected: %v", err)
	}
	// Mutation: throttle to the lowest P-state (4 GHz granted) while the
	// hosted demand is 9 GHz — a covered demand (≤ 12 GHz capacity) that
	// the chosen frequency starves.
	s1.SetFreq(s1.Spec.PStates[0])
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err == nil {
		t.Fatal("starving P-state not caught")
	}
	// A genuinely overloaded server is out of scope (no P-state covers it).
	over := &cluster.VM{ID: "v4", Demand: 20, MemoryGB: 1}
	if err := dc.Place(over, s1); err != nil {
		t.Fatal(err)
	}
	s1.ApplyDVFS()
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err != nil {
		t.Fatalf("overloaded server flagged against DVFS: %v", err)
	}
}

func TestMemoryCapacityCatchesOversubscription(t *testing.T) {
	dc, _ := testDC(t)
	inv := findInvariant(t, "cluster/memory-capacity")
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err != nil {
		t.Fatalf("healthy placement rejected: %v", err)
	}
	// Mutation: cluster.Place checks no memory constraint, so a hog lands
	// on the 16 GB server unhindered — exactly what the invariant is for.
	hog := &cluster.VM{ID: "v3", Demand: 0.1, MemoryGB: 100}
	if err := dc.Place(hog, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	err := inv.Check(Event{Kind: EvStep, DC: dc})
	if err == nil {
		t.Fatal("memory oversubscription not caught")
	}
	if !strings.Contains(err.Error(), "s1") {
		t.Fatalf("diagnostic does not name the server: %v", err)
	}
}

func TestIndexConsistentCatchesCorruptedIndex(t *testing.T) {
	dc, vms := testDC(t)
	inv := findInvariant(t, "cluster/index-consistent")
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err != nil {
		t.Fatalf("healthy index rejected: %v", err)
	}
	// Mutation: renaming a placed VM detaches it from the index.
	vms[0].ID = "renamed"
	if err := inv.Check(Event{Kind: EvStep, DC: dc}); err == nil {
		t.Fatal("corrupted VM index not caught")
	}
}

func TestIPACActiveMonotoneCatchesServerGrowth(t *testing.T) {
	inv := findInvariant(t, "optimizer/ipac-active-monotone")
	grew := &optimizer.Report{ActiveBefore: 2, ActiveAfter: 3}
	ok := &optimizer.Report{ActiveBefore: 3, ActiveAfter: 2}
	if err := inv.Check(Event{Kind: EvConsolidate, Policy: "IPAC", Report: ok}); err != nil {
		t.Fatalf("shrinking pass rejected: %v", err)
	}
	// Mutation: an "IPAC" pass that woke a server with nothing overloaded.
	if err := inv.Check(Event{Kind: EvConsolidate, Policy: "IPAC", Report: grew}); err == nil {
		t.Fatal("active-server growth not caught")
	}
	// The DVFS-less ablation shares the guarantee via the name prefix.
	if err := inv.Check(Event{Kind: EvConsolidate, Policy: "IPAC-noDVFS", Report: grew}); err == nil {
		t.Fatal("active-server growth not caught for IPAC-noDVFS")
	}
	// Out of scope: overload relief may wake servers, and pMapper promises
	// nothing.
	if err := inv.Check(Event{Kind: EvConsolidate, Policy: "IPAC", OverloadedBefore: 1, Report: grew}); err != nil {
		t.Fatalf("overload-relief wake flagged: %v", err)
	}
	if err := inv.Check(Event{Kind: EvConsolidate, Policy: "pMapper", Report: grew}); err != nil {
		t.Fatalf("pMapper growth flagged: %v", err)
	}
}

func TestReportConsistentCatchesDishonestReport(t *testing.T) {
	dc, _ := testDC(t)
	inv := findInvariant(t, "optimizer/report-consistent")
	honest := &optimizer.Report{ActiveBefore: 2, ActiveAfter: dc.NumActive()}
	if err := inv.Check(Event{Kind: EvConsolidate, DC: dc, Report: honest}); err != nil {
		t.Fatalf("honest report rejected: %v", err)
	}
	// Mutation: counted migrations without recorded moves.
	phantom := &optimizer.Report{Migrations: 3, ActiveAfter: dc.NumActive()}
	if err := inv.Check(Event{Kind: EvConsolidate, DC: dc, Report: phantom}); err == nil {
		t.Fatal("phantom migration count not caught")
	}
	// Mutation: claimed active count disagrees with the data center.
	wrong := &optimizer.Report{ActiveAfter: dc.NumActive() + 5}
	if err := inv.Check(Event{Kind: EvWatchdog, DC: dc, Report: wrong}); err == nil {
		t.Fatal("wrong active count not caught")
	}
	// Mutation: negative counter.
	negative := &optimizer.Report{Vetoed: -1, ActiveAfter: dc.NumActive()}
	if err := inv.Check(Event{Kind: EvConsolidate, DC: dc, Report: negative}); err == nil {
		t.Fatal("negative counter not caught")
	}
}

func TestEnergyMonotoneCatchesDecrease(t *testing.T) {
	inv := findInvariant(t, "power/energy-monotone")
	for step, j := range []float64{0, 10, 10, 42.5} {
		if err := inv.Check(Event{Kind: EvStep, Step: step, EnergyJ: j, HasEnergy: true}); err != nil {
			t.Fatalf("monotone sequence rejected at %v J: %v", j, err)
		}
	}
	// Mutation: the meter runs backwards.
	if err := inv.Check(Event{Kind: EvStep, EnergyJ: 41, HasEnergy: true}); err == nil {
		t.Fatal("energy decrease not caught")
	}
}

func TestEnergyMonotoneCatchesBadReadings(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		inv := &energyMonotone{}
		if err := inv.Check(Event{Kind: EvStep, EnergyJ: bad, HasEnergy: true}); err == nil {
			t.Fatalf("energy reading %v not caught", bad)
		}
	}
}

func TestPowerBoundedCatchesImpossibleDraw(t *testing.T) {
	dc, _ := testDC(t)
	inv := findInvariant(t, "power/power-bounded")
	if err := inv.Check(Event{Kind: EvStep, DC: dc, PowerW: dc.TotalPower(), HasPower: true}); err != nil {
		t.Fatalf("actual fleet power rejected: %v", err)
	}
	// Mutation: draw above every server at max power plus sleep states.
	if err := inv.Check(Event{Kind: EvStep, DC: dc, PowerW: 1e6, HasPower: true}); err == nil {
		t.Fatal("above-ceiling power not caught")
	}
	for _, bad := range []float64{-5, math.NaN(), math.Inf(1)} {
		if err := inv.Check(Event{Kind: EvStep, PowerW: bad, HasPower: true}); err == nil {
			t.Fatalf("power reading %v not caught", bad)
		}
	}
}

// brokenObservation returns a healthy observed MinimumSlack invocation
// that callers then mutate.
func brokenObservation() *MinSlackObservation {
	bin := &packing.Bin{ID: "s1", CPUCap: 10, MemCap: 16}
	candidates := []packing.Item{
		{ID: "a", CPU: 6, Mem: 1},
		{ID: "b", CPU: 3, Mem: 1},
		{ID: "c", CPU: 2, Mem: 1},
	}
	cfg := packing.DefaultMinSlackConfig()
	return &MinSlackObservation{
		Bin:        bin,
		Candidates: candidates,
		Cons:       packing.VectorConstraint{},
		Config:     cfg,
		Result:     packing.MinimumSlack(bin, candidates, packing.VectorConstraint{}, cfg),
	}
}

func TestMinSlackFeasibleCatchesBrokenResults(t *testing.T) {
	inv := findInvariant(t, "packing/minslack-feasible")
	if err := inv.Check(Event{Kind: EvPacking, MinSlack: brokenObservation()}); err != nil {
		t.Fatalf("real result rejected: %v", err)
	}
	// Mutation: chosen item that was never a candidate.
	obs := brokenObservation()
	obs.Result.Chosen = append(obs.Result.Chosen, packing.Item{ID: "ghost", CPU: 0})
	if err := inv.Check(Event{Kind: EvPacking, MinSlack: obs}); err == nil {
		t.Fatal("non-candidate item not caught")
	}
	// Mutation: the same candidate packed twice.
	obs = brokenObservation()
	obs.Result.Chosen = append(obs.Result.Chosen, obs.Result.Chosen[0])
	if err := inv.Check(Event{Kind: EvPacking, MinSlack: obs}); err == nil {
		t.Fatal("duplicated item not caught")
	}
	// Mutation: slack that disagrees with the chosen CPU sum.
	obs = brokenObservation()
	obs.Result.Slack += 1.5
	if err := inv.Check(Event{Kind: EvPacking, MinSlack: obs}); err == nil {
		t.Fatal("slack accounting error not caught")
	}
}

func TestMinSlackVsFFDCatchesWeakSearch(t *testing.T) {
	inv := findInvariant(t, "packing/minslack-vs-ffd")
	if err := inv.Check(Event{Kind: EvPacking, MinSlack: brokenObservation()}); err != nil {
		t.Fatalf("real result rejected: %v", err)
	}
	// Mutation: a "search" that packed nothing even though greedy FFD
	// fills the bin to slack ≤ ε + 1.
	obs := brokenObservation()
	obs.Result.Chosen = nil
	obs.Result.Slack = obs.Bin.Slack()
	if err := inv.Check(Event{Kind: EvPacking, MinSlack: obs}); err == nil {
		t.Fatal("worse-than-FFD result not caught")
	}
	// Out of scope: a node budget below the candidate count voids the
	// first-path-is-FFD guarantee.
	obs.Config.MaxNodes = 1
	if err := inv.Check(Event{Kind: EvPacking, MinSlack: obs}); err != nil {
		t.Fatalf("budget-starved search flagged: %v", err)
	}
}

func TestSingleBinFFDSlack(t *testing.T) {
	bin := &packing.Bin{ID: "s1", CPUCap: 10, MemCap: 16}
	items := []packing.Item{
		{ID: "a", CPU: 6, Mem: 1},
		{ID: "b", CPU: 5, Mem: 1}, // skipped: 6+5 > 10
		{ID: "c", CPU: 3, Mem: 1},
	}
	got := SingleBinFFDSlack(bin, items, packing.VectorConstraint{})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("FFD slack = %v, want 1", got)
	}
	// The constraint can reject items the CPU bound alone would accept:
	// with 50% headroom only 5 GHz may be planned, so a is skipped and b
	// fills the budget exactly.
	tight := packing.VectorConstraint{CPUHeadroom: 0.5}
	got = SingleBinFFDSlack(bin, items, tight)
	if math.Abs(got-5) > 1e-12 {
		t.Fatalf("constrained FFD slack = %v, want 5", got)
	}
	if bin.CPUUsed() != 0 || len(bin.Items()) != 0 {
		t.Fatal("SingleBinFFDSlack mutated the bin")
	}
}

func TestCountOverloaded(t *testing.T) {
	dc, _ := testDC(t)
	if got := CountOverloaded(dc); got != 0 {
		t.Fatalf("CountOverloaded = %d on a healthy fleet", got)
	}
	over := &cluster.VM{ID: "big", Demand: 50, MemoryGB: 1}
	if err := dc.Place(over, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if got := CountOverloaded(dc); got != 1 {
		t.Fatalf("CountOverloaded = %d, want 1", got)
	}
}
