package check

import (
	"fmt"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
)

// moveKey identifies one proposed migration for veto auditing.
type moveKey struct {
	vm, from, to string
}

// PolicyAuditor wraps a cost policy and records its decisions, so the
// vetoes-respected invariant can verify that no migration the policy
// denied was performed anyway. A move denied and later re-proposed with a
// higher benefit may legitimately be allowed; the auditor keeps only the
// most recent decision per (vm, from, to) tuple.
//
// Overload relief intentionally bypasses the cost policy (serving demand
// outranks migration cost), so those moves never reach the auditor and
// cannot trip the invariant.
type PolicyAuditor struct {
	Wrapped optimizer.CostPolicy
	denied  map[moveKey]bool
}

// NewPolicyAuditor wraps policy for auditing.
func NewPolicyAuditor(policy optimizer.CostPolicy) *PolicyAuditor {
	return &PolicyAuditor{Wrapped: policy, denied: map[moveKey]bool{}}
}

// Allow implements optimizer.CostPolicy, recording the verdict.
func (a *PolicyAuditor) Allow(vm *cluster.VM, from, to *cluster.Server, benefitWatts float64) bool {
	ok := a.Wrapped.Allow(vm, from, to, benefitWatts)
	k := moveKey{vm: vm.ID, from: from.ID, to: to.ID}
	if ok {
		delete(a.denied, k)
	} else {
		a.denied[k] = true
	}
	return ok
}

// Name implements optimizer.CostPolicy.
func (a *PolicyAuditor) Name() string { return a.Wrapped.Name() }

// Denied returns the number of tuples whose latest verdict was a denial.
func (a *PolicyAuditor) Denied() int { return len(a.denied) }

// Reset clears the recorded decisions; the vetoes-respected invariant
// calls it after each consolidate event so one pass's denials cannot
// bleed into the next (benefits change as the data center moves).
func (a *PolicyAuditor) Reset() { a.denied = map[moveKey]bool{} }

// vetoesRespected cross-checks a consolidator's recorded moves against
// the auditor's denial log: a move whose latest policy verdict was "deny"
// must not appear in the report.
type vetoesRespected struct {
	aud *PolicyAuditor
}

// VetoesRespected returns the invariant checking that the consolidator
// honored every veto recorded by aud. Install aud as the consolidator's
// cost policy (it forwards to the wrapped policy).
func VetoesRespected(aud *PolicyAuditor) Invariant {
	return &vetoesRespected{aud: aud}
}

func (i *vetoesRespected) Name() string { return "optimizer/vetoes-respected" }

func (i *vetoesRespected) Check(ev Event) error {
	if (ev.Kind != EvConsolidate && ev.Kind != EvWatchdog) || ev.Report == nil {
		return nil
	}
	defer i.aud.Reset()
	for _, mv := range ev.Report.Moves {
		k := moveKey{vm: mv.VM.ID, from: mv.From.ID, to: mv.To.ID}
		if i.aud.denied[k] {
			return fmt.Errorf("migration %s: %s → %s was performed despite policy %s veto",
				mv.VM.ID, mv.From.ID, mv.To.ID, i.aud.Name())
		}
	}
	return nil
}
