package check

import (
	"fmt"

	"vdcpower/internal/cluster"
)

// noDoublePlacement checks the two-phase migration protocol: while a
// migration is in flight its VM is hosted exactly once, on the source; the
// reported phase matches the actual placement; and no reservation leaks
// past the pass that opened it (every non-migration observation point must
// see an empty in-flight set).
type noDoublePlacement struct{}

func (noDoublePlacement) Name() string { return "cluster/no-double-placement" }

func (noDoublePlacement) Check(ev Event) error {
	if ev.DC == nil {
		return nil
	}
	for _, tx := range ev.DC.InFlight() {
		v, src, dst := tx.VM(), tx.Source(), tx.Target()
		if src == dst {
			return fmt.Errorf("VM %s reserved to migrate onto its own host %s", v.ID, src.ID)
		}
		if host := ev.DC.HostOf(v.ID); host != src {
			hostID := "nowhere"
			if host != nil {
				hostID = host.ID
			}
			return fmt.Errorf("in-flight VM %s hosted on %s, not its source %s", v.ID, hostID, src.ID)
		}
		for _, hosted := range dst.VMs() {
			if hosted == v {
				return fmt.Errorf("in-flight VM %s already hosted on target %s (double placement)", v.ID, dst.ID)
			}
		}
	}
	if ev.Kind != EvMigration {
		if n := len(ev.DC.InFlight()); n > 0 {
			return fmt.Errorf("%d migration reservation(s) leaked past the pass", n)
		}
		return nil
	}
	if m := ev.Migration; m != nil {
		host := ev.DC.HostOf(m.VMID)
		hostID := "nowhere"
		if host != nil {
			hostID = host.ID
		}
		switch m.Phase {
		case string(cluster.TxCommitted):
			if hostID != m.To {
				return fmt.Errorf("committed VM %s hosted on %s, not target %s", m.VMID, hostID, m.To)
			}
		case string(cluster.TxReserved), string(cluster.TxRolledBack):
			if hostID != m.From {
				return fmt.Errorf("%s VM %s hosted on %s, not source %s", m.Phase, m.VMID, hostID, m.From)
			}
		default:
			return fmt.Errorf("unknown migration phase %q for VM %s", m.Phase, m.VMID)
		}
	}
	return nil
}

// holdWindowBounded checks degraded-controller staleness: a controller may
// keep closing the loop on a held measurement only within its hold window;
// once the streak exceeds it, the step must be open-loop (and conversely,
// open-loop must not trigger early — the window exists to ride out short
// dropouts with feedback still engaged).
type holdWindowBounded struct{}

func (holdWindowBounded) Name() string { return "core/hold-window-bounded" }

func (holdWindowBounded) Check(ev Event) error {
	if ev.Kind != EvControl || ev.Control == nil {
		return nil
	}
	c := ev.Control
	if c.HoldWindow <= 0 {
		return fmt.Errorf("controller %s reports no hold window bound", c.App)
	}
	if c.HeldStreak > c.HoldWindow && !c.OpenLoop {
		return fmt.Errorf("controller %s closed the loop on a measurement held %d periods, window %d",
			c.App, c.HeldStreak, c.HoldWindow)
	}
	if c.OpenLoop && c.HeldStreak <= c.HoldWindow {
		return fmt.Errorf("controller %s went open-loop at streak %d, within window %d",
			c.App, c.HeldStreak, c.HoldWindow)
	}
	return nil
}
