package quick

import (
	"testing"

	"vdcpower/internal/obs"
)

// Mutation tests for the observability laws: each law must catch a
// deliberately broken sketch or scorecard implementation.

// TestSketchCommutativeCatchesAsymmetricMerge: a merge that sneaks an
// extra observation in when the source is larger than the destination
// depends on argument order.
func TestSketchCommutativeCatchesAsymmetricMerge(t *testing.T) {
	broken := func(dst, src *obs.Sketch) {
		if src.Count() > dst.Count() {
			dst.Observe(1.0) // "fix up" the bigger side: order-dependent
		}
		dst.Merge(src)
	}
	expectCaught(t, "sketch-merge-commutative", func(s int64) error {
		return sketchMergeCommutative(broken, s)
	})
}

// TestSketchAssociativeCatchesStatefulMerge: a merge that records the
// source's current mean as an extra sample gives grouping-dependent
// results — (a+b)+c sees b's raw mean, a+(b+c) sees the merged one.
func TestSketchAssociativeCatchesStatefulMerge(t *testing.T) {
	broken := func(dst, src *obs.Sketch) {
		m := src.Mean()
		dst.Merge(src)
		dst.Observe(m)
	}
	expectCaught(t, "sketch-merge-associative", func(s int64) error {
		return sketchMergeAssociative(broken, s)
	})
}

// TestSingleStreamCatchesLossyObserve: an observe that drops every 10th
// sample loses different samples in the split streams than in the
// single stream, so merged halves no longer equal the whole.
func TestSingleStreamCatchesLossyObserve(t *testing.T) {
	calls := 0
	broken := func(s *obs.Sketch, v float64) {
		calls++
		if calls%10 == 0 {
			return
		}
		s.Observe(v)
	}
	expectCaught(t, "sketch-merge-vs-single-stream", func(s int64) error {
		return sketchMergeVsSingleStream(broken, realSketchMerge, s)
	})
}

// TestSingleStreamCatchesDoubleCountingMerge: a merge applied twice
// inflates the merged side's counts.
func TestSingleStreamCatchesDoubleCountingMerge(t *testing.T) {
	broken := func(dst, src *obs.Sketch) {
		dst.Merge(src)
		dst.Merge(src)
	}
	expectCaught(t, "sketch-merge-vs-single-stream(double-merge)", func(s int64) error {
		return sketchMergeVsSingleStream(realSketchObserve, broken, s)
	})
}

// TestScorecardDeterministicCatchesMapOrderedRegistration: registering
// apps by iterating a map leaks Go's randomized map order into the app
// indices, so same-seed builds route observations to different apps.
func TestScorecardDeterministicCatchesMapOrderedRegistration(t *testing.T) {
	broken := func(seed int64) ([]byte, error) {
		return scorecardBuildWith(seed, func(sc *obs.Scorecard, names []string, rrefs []float64) []int {
			byName := map[string]float64{}
			for i, n := range names {
				byName[n] = rrefs[i]
			}
			idx := make([]int, 0, len(names))
			for n, rref := range byName { // map order: nondeterministic
				idx = append(idx, sc.RegisterApp(n, rref))
			}
			return idx
		})
	}
	expectCaught(t, "scorecard-deterministic", func(s int64) error {
		return scorecardDeterministic(broken, s)
	})
}

// TestObsLawsPassRealImplementation pins the registered names so the
// registry keeps exporting the observability laws.
func TestObsLawsPassRealImplementation(t *testing.T) {
	want := map[string]bool{
		"obs/sketch-merge-commutative":      false,
		"obs/sketch-merge-associative":      false,
		"obs/sketch-merge-vs-single-stream": false,
		"obs/scorecard-deterministic":       false,
	}
	for _, p := range Properties() {
		if _, ok := want[p.Name]; ok {
			want[p.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("law %q not registered", name)
		}
	}
}
