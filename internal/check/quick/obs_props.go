package quick

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"vdcpower/internal/obs"
)

// sketchMergeFn is Sketch.Merge's shape, injectable for mutation tests.
type sketchMergeFn func(dst, src *obs.Sketch)

// sketchObserveFn is Sketch.Observe's shape, injectable for mutation
// tests.
type sketchObserveFn func(s *obs.Sketch, v float64)

// scorecardBuildFn builds one serialized scorecard from a seed.
type scorecardBuildFn func(seed int64) ([]byte, error)

// realSketchMerge and realSketchObserve adapt the methods to the
// injectable shapes.
func realSketchMerge(dst, src *obs.Sketch)       { dst.Merge(src) }
func realSketchObserve(s *obs.Sketch, v float64) { s.Observe(v) }

// sketchValues draws n log-uniform samples spanning the sketch's range,
// with a few out-of-range outliers mixed in so the underflow/overflow
// buckets participate in the laws too.
func sketchValues(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch r.Intn(10) {
		case 0:
			out[i] = uniform(r, 1e-9, 1e-6) // underflow bucket
		case 1:
			out[i] = uniform(r, 1e6, 1e8) // overflow bucket
		default:
			out[i] = math.Exp(uniform(r, math.Log(1e-5), math.Log(1e5)))
		}
	}
	return out
}

// filledSketch observes n random samples into a fresh sketch.
func filledSketch(r *rand.Rand, observe sketchObserveFn, n int) *obs.Sketch {
	s := obs.NewSketch()
	for _, v := range sketchValues(r, n) {
		observe(s, v)
	}
	return s
}

// sketchEqual compares two sketches by value: bucket counts, count,
// min, max. Sketch is a comparable struct, so this is exact.
func sketchEqual(a, b *obs.Sketch) bool { return *a == *b }

// sketchMergeCommutative: merging A into B and B into A must yield the
// same sketch — Merge adds bucket counts and has no order-dependent
// state.
func sketchMergeCommutative(merge sketchMergeFn, seed int64) error {
	r := NewRand(seed)
	a := filledSketch(r, realSketchObserve, 1+r.Intn(400))
	b := filledSketch(r, realSketchObserve, 1+r.Intn(400))
	ab, ba := *a, *b
	merge(&ab, b)
	merge(&ba, a)
	if !sketchEqual(&ab, &ba) {
		return fmt.Errorf("merge not commutative: a+b count=%d mean=%g, b+a count=%d mean=%g",
			ab.Count(), ab.Mean(), ba.Count(), ba.Mean())
	}
	return nil
}

// sketchMergeAssociative: (A+B)+C == A+(B+C).
func sketchMergeAssociative(merge sketchMergeFn, seed int64) error {
	r := NewRand(seed)
	a := filledSketch(r, realSketchObserve, 1+r.Intn(300))
	b := filledSketch(r, realSketchObserve, 1+r.Intn(300))
	c := filledSketch(r, realSketchObserve, 1+r.Intn(300))
	left := *a // (a+b)+c
	merge(&left, b)
	merge(&left, c)
	bc := *b // a+(b+c)
	merge(&bc, c)
	right := *a
	merge(&right, &bc)
	if !sketchEqual(&left, &right) {
		return fmt.Errorf("merge not associative: (a+b)+c count=%d mean=%g, a+(b+c) count=%d mean=%g",
			left.Count(), left.Mean(), right.Count(), right.Mean())
	}
	return nil
}

// sketchMergeVsSingleStream: splitting one stream at a random point,
// sketching the halves separately, and merging must equal sketching the
// whole stream — the partitioned path loses nothing.
func sketchMergeVsSingleStream(observe sketchObserveFn, merge sketchMergeFn, seed int64) error {
	r := NewRand(seed)
	vals := sketchValues(r, 2+r.Intn(500))
	cut := 1 + r.Intn(len(vals)-1)
	single := obs.NewSketch()
	for _, v := range vals {
		observe(single, v)
	}
	left, right := obs.NewSketch(), obs.NewSketch()
	for _, v := range vals[:cut] {
		observe(left, v)
	}
	for _, v := range vals[cut:] {
		observe(right, v)
	}
	merge(left, right)
	if !sketchEqual(left, single) {
		return fmt.Errorf("merged halves (count=%d mean=%g) != single stream (count=%d mean=%g), cut at %d/%d",
			left.Count(), left.Mean(), single.Count(), single.Mean(), cut, len(vals))
	}
	return nil
}

// realScorecardBuild feeds one seeded synthetic observation stream into
// a fresh scorecard and serializes it: app registrations, per-step
// responses, power, residuals, control decisions, and audit records.
func realScorecardBuild(seed int64) ([]byte, error) {
	return scorecardBuildWith(seed, func(sc *obs.Scorecard, names []string, rrefs []float64) []int {
		idx := make([]int, len(names))
		for i, n := range names {
			idx[i] = sc.RegisterApp(n, rrefs[i])
		}
		return idx
	})
}

// scorecardBuildWith parameterizes the registration step so a mutation
// test can inject a nondeterministic (map-ordered) variant.
func scorecardBuildWith(seed int64, register func(*obs.Scorecard, []string, []float64) []int) ([]byte, error) {
	r := NewRand(seed)
	sc := obs.New(obs.Config{Label: "quick", SLOTargetSec: 1, FastWindow: 8, SlowWindow: 32, AuditCapacity: 16})
	names := []string{"App1", "App2", "App3"}
	rrefs := make([]float64, len(names))
	for i := range rrefs {
		rrefs[i] = uniform(r, 0.5, 1.5)
	}
	idx := register(sc, names, rrefs)
	steps := 30 + r.Intn(40)
	for k := 0; k < steps; k++ {
		sc.ObserveStep()
		for i := range idx {
			sc.ObserveResponse(idx[i], uniform(r, 0.2, 2.0))
		}
		sc.ObservePower(uniform(r, 500, 5000))
		sc.ObserveResidual(uniform(r, -0.2, 0.2))
		held := r.Intn(8) == 0
		sc.RecordControl(held, false, false, 0)
		if r.Intn(10) == 0 {
			sc.Audit().Record(obs.Decision{
				Step: k, Component: "quick", Action: "probe",
				Reason: "synthetic", Value: float64(r.Intn(5)),
			})
		}
	}
	sc.SetMPC(steps, steps-1, r.Intn(3), r.Intn(2), 0)
	sc.AddOptimizerPass(r.Intn(6), r.Intn(2), 0, 0, false)
	var b bytes.Buffer
	if err := sc.WriteJSON(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// scorecardDeterministic: building the same seeded scorecard twice must
// serialize byte-identically — no map iteration, timestamps, or pointer
// identity may leak into the document.
func scorecardDeterministic(build scorecardBuildFn, seed int64) error {
	a, err := build(seed)
	if err != nil {
		return err
	}
	b, err := build(seed)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("same-seed scorecards differ (%d vs %d bytes)", len(a), len(b))
	}
	return nil
}
