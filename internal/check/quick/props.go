package quick

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"

	"vdcpower/internal/check"
	"vdcpower/internal/cluster"
	"vdcpower/internal/dcsim"
	"vdcpower/internal/mat"
	"vdcpower/internal/mpc"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
	"vdcpower/internal/queueing"
	"vdcpower/internal/trace"
	"vdcpower/internal/workload"
)

// Property is one metamorphic law: Check runs the law for a seed and
// returns a violation as an error. Runs is the suggested number of seeds
// per test run, scaled to the property's cost.
type Property struct {
	Name  string
	Check func(seed int64) error
	Runs  int
}

// Properties returns the registered metamorphic laws, each driving the
// real implementation. The inner fn-parameterized forms exist so tests
// can prove a deliberately broken implementation is caught.
func Properties() []Property {
	return []Property{
		{"packing/permutation-invariant", func(s int64) error {
			return minSlackPermutationInvariant(packing.MinimumSlack, s)
		}, 20},
		{"packing/not-worse-than-ffd", func(s int64) error {
			return minSlackNotWorseThanFFD(packing.MinimumSlack, s)
		}, 20},
		{"queueing/mva-time-scaling", func(s int64) error {
			return mvaTimeScaling(queueing.Solve, s)
		}, 20},
		{"queueing/mva-capacity-monotone", func(s int64) error {
			return mvaCapacityMonotone(queueing.Solve, s)
		}, 20},
		{"dcsim/fig6-serial-parallel", func(s int64) error {
			return fig6SerialParallel(dcsim.Fig6Parallel, s)
		}, 2},
		{"mpc/permutation-equivariant", func(s int64) error {
			return mpcPermutationEquivariant(realMPCCompute, s)
		}, 8},
		{"workload/csv-roundtrip", func(s int64) error {
			return csvRoundTrip((*workload.Trace).WriteCSV, s)
		}, 10},
		{"cluster/migration-conservation", func(s int64) error {
			return migrationConservation(randomMigration, s)
		}, 10},
		{"mpc/warm-start-equivalence", func(s int64) error {
			return mpcWarmStartEquivalence(realMPCSequence, s)
		}, 8},
		{"packing/pool-reuse-exact", func(s int64) error {
			return minSlackPoolReuseExact(packing.MinimumSlack, s)
		}, 20},
		{"queueing/solver-reuse-exact", func(s int64) error {
			return mvaSolverReuseExact((*queueing.Solver).Solve, s)
		}, 20},
		{"obs/sketch-merge-commutative", func(s int64) error {
			return sketchMergeCommutative(realSketchMerge, s)
		}, 20},
		{"obs/sketch-merge-associative", func(s int64) error {
			return sketchMergeAssociative(realSketchMerge, s)
		}, 20},
		{"obs/sketch-merge-vs-single-stream", func(s int64) error {
			return sketchMergeVsSingleStream(realSketchObserve, realSketchMerge, s)
		}, 20},
		{"obs/scorecard-deterministic", func(s int64) error {
			return scorecardDeterministic(realScorecardBuild, s)
		}, 10},
		{"trace/replay-conserves-mass", func(s int64) error {
			return replayConservesMass(trace.Replay, s)
		}, 10},
	}
}

// replayFn is the shape of the replay engine, injectable for mutation
// tests.
type replayFn func(trace.Source, trace.Sink, trace.ReplayConfig) (trace.ReplayStats, error)

// replayConservesMass: a distortion-free replay is a faithful copy — it
// emits exactly one record per (VM, step) of the source trace, and the
// aggregate utilization mass it reports going in, going out, and
// arriving at the sink all equal the trace's own mass. Any dropped,
// duplicated, or rewritten record breaks one of the equalities.
func replayConservesMass(replay replayFn, seed int64) error {
	r := NewRand(seed)
	tr, err := workload.Generate(TraceConfig(r))
	if err != nil {
		return err
	}
	var got int
	var sunk float64
	stats, err := replay(trace.FromTrace(tr), trace.SinkFunc(func(rec trace.Record) error {
		got++
		sunk += rec.Util
		return nil
	}), trace.ReplayConfig{StepSeconds: tr.StepSeconds, Seed: seed})
	if err != nil {
		return err
	}
	want := tr.NumVMs() * tr.NumSteps()
	if got != want || stats.Records != want {
		return fmt.Errorf("replay emitted %d records (stats %d), want %d", got, stats.Records, want)
	}
	mass := 0.0
	for k := 0; k < tr.NumSteps(); k++ {
		for vm := 0; vm < tr.NumVMs(); vm++ {
			mass += tr.At(vm, k)
		}
	}
	// The three accumulations visit the same values in the same order,
	// so they must agree to the last bit; the trace-side sum visits a
	// different order, so it gets an epsilon.
	if math.Abs(stats.MassIn-stats.MassOut) > 0 || math.Abs(stats.MassOut-sunk) > 0 {
		return fmt.Errorf("distortion-free replay changed mass: in %v, out %v, sunk %v", stats.MassIn, stats.MassOut, sunk)
	}
	if math.Abs(stats.MassIn-mass) > 1e-9*math.Max(1, mass) {
		return fmt.Errorf("replay mass %v differs from trace mass %v", stats.MassIn, mass)
	}
	return nil
}

// minSlackFn is the shape of Algorithm 1, injectable for mutation tests.
type minSlackFn func(*packing.Bin, []packing.Item, packing.Constraint, packing.MinSlackConfig) packing.MinSlackResult

// packingInstance generates one bin-packing instance.
func packingInstance(seed int64) (*packing.Bin, []packing.Item, packing.Constraint, packing.MinSlackConfig) {
	r := NewRand(seed)
	b := Bin(r)
	items := Items(r, 3+r.Intn(10))
	cons := packing.VectorConstraint{CPUHeadroom: uniform(r, 0, 0.2)}
	return b, items, cons, packing.DefaultMinSlackConfig()
}

// minSlackPermutationInvariant: the chosen set and slack do not depend on
// the order candidates are presented in (the algorithm sorts internally
// with a deterministic tie-break).
func minSlackPermutationInvariant(fn minSlackFn, seed int64) error {
	b, items, cons, cfg := packingInstance(seed)
	res1 := fn(b, items, cons, cfg)
	r := NewRand(seed + 1)
	shuffled := append([]packing.Item(nil), items...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	res2 := fn(b, shuffled, cons, cfg)
	//lint:ignore floatcompare a deterministic algorithm must reproduce bit-identical slack under permutation
	if res1.Slack != res2.Slack {
		return fmt.Errorf("slack depends on input order: %v vs %v", res1.Slack, res2.Slack)
	}
	ids1, ids2 := idSet(res1.Chosen), idSet(res2.Chosen)
	if len(ids1) != len(ids2) {
		return fmt.Errorf("chosen set size depends on input order: %d vs %d", len(ids1), len(ids2))
	}
	for id := range ids1 {
		if !ids2[id] {
			return fmt.Errorf("chosen set depends on input order: %s only in one run", id)
		}
	}
	return nil
}

func idSet(items []packing.Item) map[string]bool {
	out := map[string]bool{}
	for _, it := range items {
		out[it.ID] = true
	}
	return out
}

// minSlackNotWorseThanFFD: Algorithm 1's first search path is greedy
// decreasing first-fit, so its slack can only beat FFD — unless the
// ε-optimal exit fired, which itself bounds the slack by ε.
func minSlackNotWorseThanFFD(fn minSlackFn, seed int64) error {
	b, items, cons, cfg := packingInstance(seed)
	res := fn(b, items, cons, cfg)
	bound := check.SingleBinFFDSlack(b, items, cons)
	if cfg.Epsilon > bound {
		bound = cfg.Epsilon
	}
	if res.Slack > bound+1e-9 {
		return fmt.Errorf("slack %v worse than FFD bound %v", res.Slack, bound)
	}
	return nil
}

// mvaFn is the shape of the exact MVA solver.
type mvaFn func(*queueing.Network, int) (queueing.Result, error)

// mvaTimeScaling: scaling every service demand and the think time by α
// scales response time by α and throughput by 1/α (time-unit invariance
// of the queueing network).
func mvaTimeScaling(solve mvaFn, seed int64) error {
	r := NewRand(seed)
	net := Network(r)
	n := 1 + r.Intn(30)
	alpha := uniform(r, 0.3, 3)
	r1, err := solve(net, n)
	if err != nil {
		return err
	}
	scaled := &queueing.Network{ThinkTime: alpha * net.ThinkTime, Demands: make([]float64, len(net.Demands))}
	for i, d := range net.Demands {
		scaled.Demands[i] = alpha * d
	}
	r2, err := solve(scaled, n)
	if err != nil {
		return err
	}
	if math.Abs(r2.ResponseTime-alpha*r1.ResponseTime) > 1e-9*(1+alpha*r1.ResponseTime) {
		return fmt.Errorf("response time does not scale: α=%v, %v vs %v", alpha, r1.ResponseTime, r2.ResponseTime)
	}
	if math.Abs(r2.Throughput-r1.Throughput/alpha) > 1e-9*(1+r1.Throughput/alpha) {
		return fmt.Errorf("throughput does not scale: α=%v, %v vs %v", alpha, r1.Throughput, r2.Throughput)
	}
	return nil
}

// mvaCapacityMonotone: granting a station more capacity (lower service
// demand) can only lower the total response time.
func mvaCapacityMonotone(solve mvaFn, seed int64) error {
	r := NewRand(seed)
	net := Network(r)
	n := 1 + r.Intn(30)
	r1, err := solve(net, n)
	if err != nil {
		return err
	}
	faster := &queueing.Network{ThinkTime: net.ThinkTime, Demands: append([]float64(nil), net.Demands...)}
	j := r.Intn(len(faster.Demands))
	faster.Demands[j] *= uniform(r, 0.4, 0.95)
	r2, err := solve(faster, n)
	if err != nil {
		return err
	}
	if r2.ResponseTime > r1.ResponseTime+1e-12 {
		return fmt.Errorf("more capacity at station %d raised response time %v → %v", j, r1.ResponseTime, r2.ResponseTime)
	}
	return nil
}

// fig6Fn is the shape of the parallel Fig. 6 sweep.
type fig6Fn func(*workload.Trace, []int, []func() optimizer.Consolidator, int) ([]dcsim.Fig6Point, error)

// fig6SerialParallel: the worker-pool sweep must agree bit-for-bit with
// the serial loop on any configuration, not just the paper's.
func fig6SerialParallel(par fig6Fn, seed int64) error {
	r := NewRand(seed)
	tr, err := workload.Generate(workload.GenConfig{NumVMs: 60, Days: 1, StepsPerHour: 2, Seed: r.Int63()})
	if err != nil {
		return err
	}
	sizes := []int{10 + r.Intn(20), 35 + r.Intn(25)}
	policies := []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
	}
	serial, err := dcsim.Fig6(tr, sizes, policies)
	if err != nil {
		return err
	}
	parallel, err := par(tr, sizes, policies, 1+r.Intn(3))
	if err != nil {
		return err
	}
	if len(serial) != len(parallel) {
		return fmt.Errorf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].NumVMs != parallel[i].NumVMs {
			return fmt.Errorf("point %d sizes differ: %d vs %d", i, serial[i].NumVMs, parallel[i].NumVMs)
		}
		if len(serial[i].PerVMWh) != len(parallel[i].PerVMWh) {
			return fmt.Errorf("point %d policy counts differ", i)
		}
		for name, wh := range serial[i].PerVMWh {
			pwh, ok := parallel[i].PerVMWh[name]
			if !ok {
				return fmt.Errorf("point %d: policy %s missing from parallel run", i, name)
			}
			//lint:ignore floatcompare the sweeps run identical deterministic code and must agree bit-for-bit
			if wh != pwh {
				return fmt.Errorf("point %d policy %s diverges: serial %v, parallel %v", i, name, wh, pwh)
			}
		}
	}
	return nil
}

// mpcFn is the shape of one controller solve, injectable for mutation
// tests: it returns the first move Δc(k).
type mpcFn func(cfg mpc.Config, tPast []float64, cPast []mat.Vec) (mat.Vec, error)

func realMPCCompute(cfg mpc.Config, tPast []float64, cPast []mat.Vec) (mat.Vec, error) {
	ctrl, err := mpc.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := ctrl.Compute(tPast, cPast)
	if err != nil {
		return nil, err
	}
	// Delta is a view into the controller's reused buffers; the
	// controller outlives this call only through the returned vector.
	return res.Delta.Clone(), nil
}

// mpcPermutationEquivariant: relabeling the controller's input channels
// (tiers) permutes the computed move the same way — the optimization has
// no hidden preference for channel order. The control penalty R makes the
// program strictly convex, so the minimizer is unique and the comparison
// is tolerance-tight.
func mpcPermutationEquivariant(compute mpcFn, seed int64) error {
	r := NewRand(seed)
	m := 2 + r.Intn(2)
	model := ARXModel(r, m)
	cfg := MPCConfig(r, model)

	tPast := []float64{uniform(r, 0.5, 2.5), uniform(r, 0.5, 2.5)}
	cPast := make([]mat.Vec, model.Nb)
	for j := range cPast {
		cPast[j] = make(mat.Vec, m)
		for i := 0; i < m; i++ {
			cPast[j][i] = uniform(r, cfg.CMin[i]+0.1, cfg.CMax[i]-0.5)
		}
	}
	d1, err := compute(cfg, tPast, cPast)
	if err != nil {
		return err
	}

	p := r.Perm(m)
	permuted := cfg
	pm := *model
	pm.B = make([]mat.Vec, len(model.B))
	for j := range model.B {
		pm.B[j] = permuteVec(model.B[j], p)
	}
	permuted.Model = &pm
	permuted.R = permuteVec(cfg.R, p)
	permuted.CMin = permuteVec(cfg.CMin, p)
	permuted.CMax = permuteVec(cfg.CMax, p)
	cPast2 := make([]mat.Vec, len(cPast))
	for j := range cPast {
		cPast2[j] = permuteVec(cPast[j], p)
	}
	d2, err := compute(permuted, tPast, cPast2)
	if err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		want := d1[p[i]]
		if math.Abs(d2[i]-want) > 1e-6*(1+math.Abs(want)) {
			return fmt.Errorf("channel %d (originally %d): Δ %v, want %v", i, p[i], d2[i], want)
		}
	}
	return nil
}

// permuteVec returns w with w[i] = v[p[i]].
func permuteVec(v mat.Vec, p []int) mat.Vec {
	w := make(mat.Vec, len(v))
	for i := range w {
		w[i] = v[p[i]]
	}
	return w
}

// traceWriteFn is the shape of the CSV serializer.
type traceWriteFn func(*workload.Trace, io.Writer) error

// csvRoundTrip: one write/read cycle reproduces the trace up to the
// serializer's 6-significant-digit quantization, and a second cycle is
// bit-exact (quantization is idempotent).
func csvRoundTrip(write traceWriteFn, seed int64) error {
	r := NewRand(seed)
	tr, err := workload.Generate(TraceConfig(r))
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := write(tr, &buf); err != nil {
		return err
	}
	rt, err := workload.ReadCSV(&buf)
	if err != nil {
		return err
	}
	if len(rt.Series) != len(tr.Series) {
		return fmt.Errorf("round-trip changed VM count %d → %d", len(tr.Series), len(rt.Series))
	}
	for i := range tr.Series {
		if rt.Names[i] != tr.Names[i] || rt.Sectors[i] != tr.Sectors[i] {
			return fmt.Errorf("round-trip changed metadata of VM %d", i)
		}
		for k := range tr.Series[i] {
			if math.Abs(rt.Series[i][k]-tr.Series[i][k]) > 1e-5 {
				return fmt.Errorf("sample (%d,%d) drifted beyond quantization: %v → %v",
					i, k, tr.Series[i][k], rt.Series[i][k])
			}
		}
	}
	buf.Reset()
	if err := write(rt, &buf); err != nil {
		return err
	}
	rt2, err := workload.ReadCSV(&buf)
	if err != nil {
		return err
	}
	for i := range rt.Series {
		for k := range rt.Series[i] {
			//lint:ignore floatcompare the second cycle re-serializes already-quantized values and must be lossless
			if rt2.Series[i][k] != rt.Series[i][k] {
				return fmt.Errorf("second round-trip not idempotent at (%d,%d): %v → %v",
					i, k, rt.Series[i][k], rt2.Series[i][k])
			}
		}
	}
	return nil
}

// mpcSequenceFn runs one controller over a sequence of periods and
// returns the move of each, injectable for mutation tests. Unlike mpcFn
// it keeps the controller (and hence its warm-start state and reused
// buffers) alive across the whole sequence.
type mpcSequenceFn func(cfg mpc.Config, tHists [][]float64, cHists [][]mat.Vec) ([]mat.Vec, error)

func realMPCSequence(cfg mpc.Config, tHists [][]float64, cHists [][]mat.Vec) ([]mat.Vec, error) {
	ctrl, err := mpc.New(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]mat.Vec, len(tHists))
	for k := range tHists {
		res, err := ctrl.Compute(tHists[k], cHists[k])
		if err != nil {
			return nil, err
		}
		out[k] = res.Delta.Clone()
	}
	return out, nil
}

// mpcWarmStartEquivalence: a controller that warm-starts each QP from
// the previous period's active set produces the same moves as one that
// solves every period cold (ROADMAP item 2). R > 0 makes each program
// strictly convex, so the minimizer is unique and the paths agree to
// solver round-off.
func mpcWarmStartEquivalence(compute mpcSequenceFn, seed int64) error {
	r := NewRand(seed)
	m := 2 + r.Intn(2)
	model := ARXModel(r, m)
	cfg := MPCConfig(r, model)

	const periods = 6
	tHists := make([][]float64, periods)
	cHists := make([][]mat.Vec, periods)
	for k := range tHists {
		tHists[k] = []float64{uniform(r, 0.5, 2.5), uniform(r, 0.5, 2.5)}
		cHists[k] = make([]mat.Vec, model.Nb)
		for j := range cHists[k] {
			cHists[k][j] = make(mat.Vec, m)
			for i := 0; i < m; i++ {
				cHists[k][j][i] = uniform(r, cfg.CMin[i]+0.1, cfg.CMax[i]-0.5)
			}
		}
	}
	warm, err := compute(cfg, tHists, cHists)
	if err != nil {
		return err
	}
	cold := cfg
	cold.DisableWarmStart = true
	want, err := compute(cold, tHists, cHists)
	if err != nil {
		return err
	}
	for k := range want {
		for i := range want[k] {
			if math.Abs(warm[k][i]-want[k][i]) > 1e-8*(1+math.Abs(want[k][i])) {
				return fmt.Errorf("period %d channel %d: warm Δ %v, cold Δ %v",
					k, i, warm[k][i], want[k][i])
			}
		}
	}
	return nil
}

// minSlackPoolReuseExact: running Algorithm 1 through a node pool that
// was just dirtied by a different instance returns exactly the result of
// the allocating form — the pool is an allocation strategy, never an
// answer change (ROADMAP item 2).
func minSlackPoolReuseExact(fn minSlackFn, seed int64) error {
	b, items, cons, cfg := packingInstance(seed)
	plain := fn(b, items, cons, cfg)

	pooled := cfg
	pooled.Pool = packing.NewPool()
	bDirty, dirty, consDirty, _ := packingInstance(seed + 7919)
	fn(bDirty, dirty, consDirty, pooled) // dirty the pool's buffers first
	res := fn(b, items, cons, pooled)

	//lint:ignore floatcompare the pooled search must be exactly the allocating search
	if res.Slack != plain.Slack || res.Widened != plain.Widened ||
		res.Exhausted != plain.Exhausted || res.Nodes != plain.Nodes {
		return fmt.Errorf("pooled outcome (s=%v w=%v e=%v n=%d) differs from plain (s=%v w=%v e=%v n=%d)",
			res.Slack, res.Widened, res.Exhausted, res.Nodes,
			plain.Slack, plain.Widened, plain.Exhausted, plain.Nodes)
	}
	if len(res.Chosen) != len(plain.Chosen) {
		return fmt.Errorf("pooled chose %d items, plain %d", len(res.Chosen), len(plain.Chosen))
	}
	for i := range plain.Chosen {
		if res.Chosen[i] != plain.Chosen[i] {
			return fmt.Errorf("pooled item %d = %+v, plain %+v", i, res.Chosen[i], plain.Chosen[i])
		}
	}
	return nil
}

// mvaSolverFn is the shape of the reusable MVA solve, injectable for
// mutation tests.
type mvaSolverFn func(s *queueing.Solver, net *queueing.Network, n int, res *queueing.Result) error

// mvaSolverReuseExact: a Solver and Result dirtied by a larger network
// reproduce package Solve bit for bit on the next network — buffer reuse
// must never leak state between solves (ROADMAP item 2).
func mvaSolverReuseExact(solve mvaSolverFn, seed int64) error {
	r := NewRand(seed)
	var s queueing.Solver
	var res queueing.Result
	big := Network(r)
	for len(big.Demands) < 4 { // ensure the dirtying pass is the larger one
		big.Demands = append(big.Demands, uniform(r, 0.005, 0.1))
	}
	if err := solve(&s, big, 1+r.Intn(40), &res); err != nil {
		return err
	}
	net := Network(r)
	n := r.Intn(40)
	want, err := queueing.Solve(net, n)
	if err != nil {
		return err
	}
	if err := solve(&s, net, n, &res); err != nil {
		return err
	}
	//lint:ignore floatcompare buffer reuse must be bitwise invisible
	if res.Throughput != want.Throughput || res.ResponseTime != want.ResponseTime || res.N != want.N {
		return fmt.Errorf("reused solver: X=%v R=%v N=%d, fresh X=%v R=%v N=%d",
			res.Throughput, res.ResponseTime, res.N, want.Throughput, want.ResponseTime, want.N)
	}
	if len(res.StationResp) != len(want.StationResp) {
		return fmt.Errorf("reused solver kept %d stations, fresh %d", len(res.StationResp), len(want.StationResp))
	}
	for i := range want.StationResp {
		//lint:ignore floatcompare buffer reuse must be bitwise invisible
		bad := res.StationResp[i] != want.StationResp[i] || res.QueueLen[i] != want.QueueLen[i] || res.Utilization[i] != want.Utilization[i]
		if bad {
			return fmt.Errorf("station %d: reused (%v,%v,%v), fresh (%v,%v,%v)", i,
				res.StationResp[i], res.QueueLen[i], res.Utilization[i],
				want.StationResp[i], want.QueueLen[i], want.Utilization[i])
		}
	}
	return nil
}

// migrateFn is one step of a random placement walk, injectable so tests
// can prove the checker catches a walk that loses VMs.
type migrateFn func(r *rand.Rand, dc *cluster.DataCenter, vms []*cluster.VM) error

// randomMigration moves one random VM to one random admissible server.
func randomMigration(r *rand.Rand, dc *cluster.DataCenter, vms []*cluster.VM) error {
	cons := cluster.And{cluster.CPUConstraint{}, cluster.MemoryConstraint{}}
	v := vms[r.Intn(len(vms))]
	target := dc.Servers[r.Intn(len(dc.Servers))]
	if dc.HostOf(v.ID) == target || target.Cordoned() || !cons.Admits(target, []*cluster.VM{v}) {
		return nil // inadmissible: skip this step
	}
	_, err := dc.Migrate(v, target)
	return err
}

// migrationConservation: an arbitrary admissible migration/sleep walk
// preserves the VM population, the host index, per-server memory
// capacity, and the P-state discipline — verified by the same invariant
// registry the simulators run under -check.
func migrationConservation(step migrateFn, seed int64) error {
	r := NewRand(seed)
	servers := Fleet(r, 6)
	dc, err := cluster.NewDataCenter(servers)
	if err != nil {
		return err
	}
	vms := VMs(r, 15)
	cons := cluster.And{cluster.CPUConstraint{}, cluster.MemoryConstraint{}}
	for _, v := range vms {
		placed := false
		for try := 0; try < 100 && !placed; try++ {
			s := servers[r.Intn(len(servers))]
			if cons.Admits(s, []*cluster.VM{v}) {
				if err := dc.Place(v, s); err != nil {
					return err
				}
				placed = true
			}
		}
		if !placed {
			return fmt.Errorf("could not place %s on any server", v.ID)
		}
	}
	c := check.New(check.ClusterInvariants()...)
	c.Observe(check.Event{Kind: check.EvInit, Step: -1, DC: dc})
	for k := 0; k < 40; k++ {
		if err := step(r, dc, vms); err != nil {
			return err
		}
		if r.Intn(4) == 0 {
			dc.SleepIdle()
		}
		c.Observe(check.Event{Kind: check.EvStep, Step: k, DC: dc})
	}
	return c.Err()
}
