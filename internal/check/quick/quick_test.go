package quick

import (
	"io"
	"math/rand"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/dcsim"
	"vdcpower/internal/mat"
	"vdcpower/internal/mpc"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
	"vdcpower/internal/queueing"
	"vdcpower/internal/trace"
	"vdcpower/internal/workload"
)

// TestProperties runs every registered metamorphic law over its seed
// budget against the real implementations.
func TestProperties(t *testing.T) {
	for _, p := range Properties() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			runs := p.Runs
			if testing.Short() && runs > 3 {
				runs = 3
			}
			for seed := int64(1); seed <= int64(runs); seed++ {
				if err := p.Check(seed); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestRegistryHasAtLeastSixProperties(t *testing.T) {
	props := Properties()
	if len(props) < 6 {
		t.Fatalf("registry has %d properties, acceptance floor is 6", len(props))
	}
	seen := map[string]bool{}
	for _, p := range props {
		if p.Name == "" || p.Check == nil || p.Runs < 1 {
			t.Fatalf("malformed property %+v", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate property %q", p.Name)
		}
		seen[p.Name] = true
	}
}

// expectCaught asserts that some seed in [1, 40] makes the property fail
// for the given broken implementation.
func expectCaught(t *testing.T, what string, run func(seed int64) error) {
	t.Helper()
	for seed := int64(1); seed <= 40; seed++ {
		if err := run(seed); err != nil {
			t.Logf("%s caught at seed %d: %v", what, seed, err)
			return
		}
	}
	t.Fatalf("%s: no seed caught the broken implementation", what)
}

// Mutation tests: each law must catch a deliberately broken
// implementation, or it guards nothing.

func TestPermutationInvariantCatchesOrderDependence(t *testing.T) {
	// Broken chooser: greedy in presentation order, no sort — its output
	// depends on how the candidates happen to be listed.
	broken := func(b *packing.Bin, items []packing.Item, cons packing.Constraint, cfg packing.MinSlackConfig) packing.MinSlackResult {
		var chosen []packing.Item
		slack := b.Slack()
		for _, it := range items {
			if it.CPU > slack {
				continue
			}
			next := append(chosen, it)
			if !cons.Fits(b, next) {
				continue
			}
			chosen = next
			slack -= it.CPU
		}
		return packing.MinSlackResult{Chosen: chosen, Slack: slack}
	}
	expectCaught(t, "order-dependent chooser", func(s int64) error {
		return minSlackPermutationInvariant(broken, s)
	})
}

func TestNotWorseThanFFDCatchesWeakSearch(t *testing.T) {
	// Broken search: packs nothing at all.
	broken := func(b *packing.Bin, items []packing.Item, cons packing.Constraint, cfg packing.MinSlackConfig) packing.MinSlackResult {
		return packing.MinSlackResult{Slack: b.Slack()}
	}
	expectCaught(t, "empty-handed search", func(s int64) error {
		return minSlackNotWorseThanFFD(broken, s)
	})
}

func TestMVATimeScalingCatchesAffineOffset(t *testing.T) {
	// Broken solver: a constant measurement offset on the response time,
	// which breaks the linear time-unit scaling.
	broken := func(net *queueing.Network, n int) (queueing.Result, error) {
		res, err := queueing.Solve(net, n)
		res.ResponseTime += 0.01
		return res, err
	}
	expectCaught(t, "offset MVA solver", func(s int64) error {
		return mvaTimeScaling(broken, s)
	})
}

func TestMVACapacityMonotoneCatchesInvertedModel(t *testing.T) {
	// Broken solver: response time that grows as stations get faster.
	broken := func(net *queueing.Network, n int) (queueing.Result, error) {
		rt := 0.0
		for _, d := range net.Demands {
			rt += 1 / d
		}
		return queueing.Result{N: n, ResponseTime: rt, Throughput: 1}, nil
	}
	expectCaught(t, "inverted queueing model", func(s int64) error {
		return mvaCapacityMonotone(broken, s)
	})
}

func TestFig6SerialParallelCatchesDivergence(t *testing.T) {
	// Broken parallel sweep: one policy's result is perturbed, as a
	// nondeterministic scheduler would.
	broken := func(tr *workload.Trace, sizes []int, policies []func() optimizer.Consolidator, workers int) ([]dcsim.Fig6Point, error) {
		pts, err := dcsim.Fig6Parallel(tr, sizes, policies, workers)
		if err != nil {
			return nil, err
		}
		for name := range pts[0].PerVMWh {
			pts[0].PerVMWh[name] *= 1.001
			break
		}
		return pts, nil
	}
	// One seed suffices: the divergence is unconditional.
	if err := fig6SerialParallel(broken, 1); err == nil {
		t.Fatal("diverging parallel sweep not caught")
	}
}

func TestMPCEquivarianceCatchesChannelBias(t *testing.T) {
	// Broken controller: silently refuses to ever move channel 0 — a
	// hidden preference tied to channel order.
	broken := func(cfg mpc.Config, tPast []float64, cPast []mat.Vec) (mat.Vec, error) {
		d, err := realMPCCompute(cfg, tPast, cPast)
		if err != nil {
			return nil, err
		}
		d[0] = 0
		return d, nil
	}
	expectCaught(t, "channel-biased controller", func(s int64) error {
		return mpcPermutationEquivariant(broken, s)
	})
}

func TestCSVRoundTripCatchesLossyWriter(t *testing.T) {
	// Broken writer: perturbs samples beyond the documented quantization
	// before serializing.
	broken := func(tr *workload.Trace, w io.Writer) error {
		lossy := &workload.Trace{
			StepSeconds: tr.StepSeconds,
			Names:       tr.Names,
			Sectors:     tr.Sectors,
			Series:      make([][]float64, len(tr.Series)),
		}
		for i, s := range tr.Series {
			lossy.Series[i] = make([]float64, len(s))
			for k, u := range s {
				lossy.Series[i][k] = u * 0.999
			}
		}
		return lossy.WriteCSV(w)
	}
	expectCaught(t, "lossy trace writer", func(s int64) error {
		return csvRoundTrip(broken, s)
	})
}

func TestWarmStartEquivalenceCatchesStaleActiveSet(t *testing.T) {
	// Broken warm path: a controller that, when warm starting, keeps
	// returning the previous period's move — the canonical symptom of a
	// stale active set or dirty reused buffer.
	broken := func(cfg mpc.Config, tHists [][]float64, cHists [][]mat.Vec) ([]mat.Vec, error) {
		out, err := realMPCSequence(cfg, tHists, cHists)
		if err != nil {
			return nil, err
		}
		if !cfg.DisableWarmStart {
			for k := 1; k < len(out); k++ {
				out[k] = out[k-1]
			}
		}
		return out, nil
	}
	expectCaught(t, "stale warm-start state", func(s int64) error {
		return mpcWarmStartEquivalence(broken, s)
	})
}

func TestPoolReuseExactCatchesPoolPathDivergence(t *testing.T) {
	// Broken pooled path: silently drops the last candidate when a pool
	// is wired — a buffer-sizing bug only the pooled route would have.
	broken := func(b *packing.Bin, items []packing.Item, cons packing.Constraint, cfg packing.MinSlackConfig) packing.MinSlackResult {
		if cfg.Pool != nil && len(items) > 0 {
			items = items[:len(items)-1]
		}
		return packing.MinimumSlack(b, items, cons, cfg)
	}
	expectCaught(t, "pool-path divergence", func(s int64) error {
		return minSlackPoolReuseExact(broken, s)
	})
}

func TestSolverReuseExactCatchesStateLeak(t *testing.T) {
	// Broken solver: a residue of the previous call's answer bleeds into
	// the next one, as an uncleared scratch buffer would.
	prev := 0.0
	broken := func(s *queueing.Solver, net *queueing.Network, n int, res *queueing.Result) error {
		if err := s.Solve(net, n, res); err != nil {
			return err
		}
		res.Throughput += 1e-6 * prev
		prev = res.Throughput
		return nil
	}
	expectCaught(t, "solver state leak", func(s int64) error {
		prev = 0
		return mvaSolverReuseExact(broken, s)
	})
}

func TestMigrationConservationCatchesVMLoss(t *testing.T) {
	// Broken walk: its fifth step decommissions a VM instead of migrating
	// it, then keeps walking the survivors.
	calls := 0
	var lost *cluster.VM
	broken := func(r *rand.Rand, dc *cluster.DataCenter, vms []*cluster.VM) error {
		calls++
		if calls == 5 {
			lost = vms[0]
			return dc.Remove(lost)
		}
		if lost != nil {
			vms = vms[1:]
		}
		return randomMigration(r, dc, vms)
	}
	if err := migrationConservation(broken, 1); err == nil {
		t.Fatal("VM loss not caught")
	}
}

func TestReplayConservesMassCatchesDroppedRecords(t *testing.T) {
	// Broken engine: silently drops every seventh record — the failure
	// mode of a replayer that loses records across buffer flushes.
	broken := func(src trace.Source, sink trace.Sink, cfg trace.ReplayConfig) (trace.ReplayStats, error) {
		n := 0
		filtered := trace.SinkFunc(func(rec trace.Record) error {
			n++
			if n%7 == 0 {
				return nil
			}
			return sink.Emit(rec)
		})
		return trace.Replay(src, filtered, cfg)
	}
	expectCaught(t, "record-dropping replay", func(s int64) error {
		return replayConservesMass(broken, s)
	})
}

func TestReplayConservesMassCatchesUtilRewrite(t *testing.T) {
	// Broken engine: nudges every utilization by 1e-6 on the way
	// through — a "harmless" precision bug a record-count check would
	// never see.
	broken := func(src trace.Source, sink trace.Sink, cfg trace.ReplayConfig) (trace.ReplayStats, error) {
		skewed := trace.SinkFunc(func(rec trace.Record) error {
			rec.Util += 1e-6
			return sink.Emit(rec)
		})
		return trace.Replay(src, skewed, cfg)
	}
	expectCaught(t, "mass-skewing replay", func(s int64) error {
		return replayConservesMass(broken, s)
	})
}
