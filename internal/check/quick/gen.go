// Package quick provides seeded random generators for the simulator's
// domain objects (VM sets, server fleets, packing instances, queueing
// networks, ARX models, workload traces) and a registry of metamorphic
// properties driven by them: laws that relate two runs of the same code
// on transformed inputs, so they need no hand-computed expected values.
//
// Everything is seeded: a failing seed reproduces exactly, and CI runs
// a fixed seed range so failures are never flaky.
package quick

import (
	"fmt"
	"math/rand"

	"vdcpower/internal/cluster"
	"vdcpower/internal/mat"
	"vdcpower/internal/mpc"
	"vdcpower/internal/packing"
	"vdcpower/internal/power"
	"vdcpower/internal/queueing"
	"vdcpower/internal/sysid"
	"vdcpower/internal/workload"
)

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// uniform draws from [lo, hi).
func uniform(r *rand.Rand, lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }

// Items generates n packing items shaped like the Fig. 6 VM population:
// CPU demand up to a few GHz, sub-server memory.
func Items(r *rand.Rand, n int) []packing.Item {
	out := make([]packing.Item, n)
	for i := range out {
		out[i] = packing.Item{
			ID:  fmt.Sprintf("item-%03d", i),
			CPU: uniform(r, 0.1, 3.0),
			Mem: uniform(r, 0.25, 2.0),
		}
	}
	return out
}

// Bin generates one packing target sized like the paper's server types,
// optionally preloaded with a few resident items.
func Bin(r *rand.Rand) *packing.Bin {
	b := &packing.Bin{
		ID:     "bin-0",
		CPUCap: uniform(r, 3, 14),
		MemCap: uniform(r, 8, 32),
	}
	for i, preload := 0, r.Intn(3); i < preload; i++ {
		it := packing.Item{
			ID:  fmt.Sprintf("resident-%d", i),
			CPU: uniform(r, 0.1, b.CPUCap/4),
			Mem: uniform(r, 0.25, b.MemCap/4),
		}
		b.Add(it)
	}
	return b
}

// Fleet generates n servers with a random mix of the paper's three
// hardware types.
func Fleet(r *rand.Rand, n int) []*cluster.Server {
	types := power.AllTypes()
	out := make([]*cluster.Server, n)
	for i := range out {
		out[i] = cluster.NewServer(fmt.Sprintf("srv-%03d", i), types[r.Intn(len(types))])
	}
	return out
}

// VMs generates n virtual machines with modest demands, so a fleet a few
// servers strong can host them under the CPU and memory constraints.
func VMs(r *rand.Rand, n int) []*cluster.VM {
	out := make([]*cluster.VM, n)
	for i := range out {
		out[i] = &cluster.VM{
			ID:       fmt.Sprintf("vm-%03d", i),
			Demand:   uniform(r, 0.05, 1.0),
			MemoryGB: uniform(r, 0.25, 1.0),
		}
	}
	return out
}

// Network generates a closed queueing network with 1–4 stations and
// realistic service demands.
func Network(r *rand.Rand) *queueing.Network {
	k := 1 + r.Intn(4)
	net := &queueing.Network{ThinkTime: uniform(r, 0, 2), Demands: make([]float64, k)}
	for i := range net.Demands {
		net.Demands[i] = uniform(r, 0.005, 0.4)
	}
	return net
}

// ARXModel generates a stable ARX model with m inputs in the shape the
// response-time controller identifies: first-order autoregression and
// negative input gains (more CPU lowers the response time).
func ARXModel(r *rand.Rand, m int) *sysid.Model {
	model := &sysid.Model{
		Na:        1,
		Nb:        2,
		NumInputs: m,
		A:         []float64{uniform(r, -0.4, 0.8)},
		B:         make([]mat.Vec, 2),
		Gamma:     uniform(r, 0.5, 2.0),
	}
	for j := range model.B {
		model.B[j] = make(mat.Vec, m)
		for i := range model.B[j] {
			model.B[j][i] = uniform(r, -0.5, -0.05)
		}
	}
	return model
}

// MPCConfig generates a solvable controller configuration around the
// given model.
func MPCConfig(r *rand.Rand, model *sysid.Model) mpc.Config {
	m := model.NumInputs
	cfg := mpc.Config{
		Model:       model,
		P:           4 + r.Intn(6),
		Q:           1,
		R:           make(mat.Vec, m),
		TrefPeriods: uniform(r, 1, 4),
		Setpoint:    uniform(r, 0.5, 1.5),
		CMin:        make(mat.Vec, m),
		CMax:        make(mat.Vec, m),
	}
	cfg.M = 2 + r.Intn(cfg.P-2)
	for i := 0; i < m; i++ {
		cfg.R[i] = uniform(r, 0.1, 1.0)
		cfg.CMin[i] = uniform(r, 0.1, 0.3)
		cfg.CMax[i] = uniform(r, 2.0, 4.0)
	}
	return cfg
}

// TraceConfig generates a small workload-generation config (minutes of
// simulated wall clock, not the paper's full week).
func TraceConfig(r *rand.Rand) workload.GenConfig {
	return workload.GenConfig{
		NumVMs:       10 + r.Intn(50),
		Days:         1,
		StepsPerHour: 2 + r.Intn(3),
		Seed:         r.Int63(),
	}
}
