package check

import (
	"fmt"
	"strings"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/power"
)

func faultLawDC(t *testing.T) (*cluster.DataCenter, *cluster.VM) {
	t.Helper()
	var servers []*cluster.Server
	for i := 0; i < 3; i++ {
		servers = append(servers, cluster.NewServer(fmt.Sprintf("s%d", i), power.TypeMid()))
	}
	dc, err := cluster.NewDataCenter(servers)
	if err != nil {
		t.Fatal(err)
	}
	v := &cluster.VM{ID: "v1", Demand: 1, MemoryGB: 1}
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	return dc, v
}

func TestNoDoublePlacementCleanTwoPhase(t *testing.T) {
	dc, v := faultLawDC(t)
	law := noDoublePlacement{}
	ck := New(law)
	dc.SetMigrationObserver(func(tx *cluster.MigrationTx) {
		ck.Observe(Event{Kind: EvMigration, Step: 0, DC: dc, Migration: &MigrationObservation{
			VMID: tx.VM().ID, From: tx.Source().ID, To: tx.Target().ID, Phase: string(tx.Phase()),
		}})
	})
	tx, err := dc.BeginMigration(v, dc.Servers[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, err = dc.BeginMigration(v, dc.Servers[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// A post-pass observation with nothing in flight is clean too.
	ck.Observe(Event{Kind: EvConsolidate, Step: 0, DC: dc})
	if err := ck.Err(); err != nil {
		t.Fatalf("clean two-phase flow flagged: %v", err)
	}
}

func TestNoDoublePlacementCatchesLeakedReservation(t *testing.T) {
	dc, v := faultLawDC(t)
	if _, err := dc.BeginMigration(v, dc.Servers[1]); err != nil {
		t.Fatal(err)
	}
	// The pass ended (EvConsolidate) with the reservation still open.
	err := noDoublePlacement{}.Check(Event{Kind: EvConsolidate, Step: 3, DC: dc})
	if err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("leaked reservation not caught: %v", err)
	}
}

func TestNoDoublePlacementCatchesLyingPhase(t *testing.T) {
	dc, _ := faultLawDC(t)
	// Claim a commit onto s1 while the VM still sits on s0.
	err := noDoublePlacement{}.Check(Event{Kind: EvMigration, Step: 1, DC: dc,
		Migration: &MigrationObservation{VMID: "v1", From: "s0", To: "s1", Phase: string(cluster.TxCommitted)}})
	if err == nil || !strings.Contains(err.Error(), "not target") {
		t.Fatalf("lying commit not caught: %v", err)
	}
	err = noDoublePlacement{}.Check(Event{Kind: EvMigration, Step: 1, DC: dc,
		Migration: &MigrationObservation{VMID: "v1", From: "s2", To: "s1", Phase: string(cluster.TxRolledBack)}})
	if err == nil || !strings.Contains(err.Error(), "not source") {
		t.Fatalf("lying rollback not caught: %v", err)
	}
	err = noDoublePlacement{}.Check(Event{Kind: EvMigration, Step: 1, DC: dc,
		Migration: &MigrationObservation{VMID: "v1", From: "s0", To: "s1", Phase: "warp"}})
	if err == nil || !strings.Contains(err.Error(), "unknown migration phase") {
		t.Fatalf("unknown phase not caught: %v", err)
	}
}

func TestHoldWindowBoundedLaw(t *testing.T) {
	law := holdWindowBounded{}
	ok := []Event{
		{Kind: EvControl, Control: &ControlObservation{App: "a", HoldWindow: 4}},
		{Kind: EvControl, Control: &ControlObservation{App: "a", Held: true, HeldStreak: 4, HoldWindow: 4}},
		{Kind: EvControl, Control: &ControlObservation{App: "a", Held: true, HeldStreak: 5, HoldWindow: 4, OpenLoop: true}},
		{Kind: EvStep}, // non-control events are out of scope
	}
	for i, ev := range ok {
		if err := law.Check(ev); err != nil {
			t.Errorf("legal event %d flagged: %v", i, err)
		}
	}
	// Stale loop closure: streak past the window but still closed-loop.
	err := law.Check(Event{Kind: EvControl, Control: &ControlObservation{
		App: "a", Held: true, HeldStreak: 5, HoldWindow: 4}})
	if err == nil || !strings.Contains(err.Error(), "closed the loop") {
		t.Fatalf("stale closure not caught: %v", err)
	}
	// Premature open loop defeats the window's purpose.
	err = law.Check(Event{Kind: EvControl, Control: &ControlObservation{
		App: "a", Held: true, HeldStreak: 2, HoldWindow: 4, OpenLoop: true}})
	if err == nil || !strings.Contains(err.Error(), "within window") {
		t.Fatalf("premature open loop not caught: %v", err)
	}
	if err := law.Check(Event{Kind: EvControl, Control: &ControlObservation{App: "a"}}); err == nil {
		t.Fatal("missing hold window bound not caught")
	}
}

func TestVMConservationAcceptsReportedLosses(t *testing.T) {
	dc, v := faultLawDC(t)
	law := &vmConservation{}
	ck := New(law)
	ck.Observe(Event{Kind: EvInit, Step: 0, DC: dc}) // baseline: {v1}
	lost := dc.Crash(dc.Servers[0])
	if len(lost) != 1 || lost[0] != v {
		t.Fatalf("crash orphans = %v", lost)
	}
	// Reported loss: the baseline shrinks, no violation.
	ck.Observe(Event{Kind: EvCrash, Step: 1, DC: dc, LostVMs: []string{"v1"}})
	ck.Observe(Event{Kind: EvStep, Step: 2, DC: dc})
	if err := ck.Err(); err != nil {
		t.Fatalf("reported loss flagged: %v", err)
	}
	// An unexplained loss (no LostVMs report) still violates.
	dc2, _ := faultLawDC(t)
	law2 := &vmConservation{}
	law2.Check(Event{Kind: EvInit, Step: 0, DC: dc2})
	dc2.Crash(dc2.Servers[0])
	if err := law2.Check(Event{Kind: EvStep, Step: 1, DC: dc2}); err == nil {
		t.Fatal("silent VM loss not caught")
	}
	// Reporting a loss of a VM that never existed is itself a violation.
	law3 := &vmConservation{}
	law3.Check(Event{Kind: EvInit, Step: 0, DC: dc})
	if err := law3.Check(Event{Kind: EvCrash, Step: 1, LostVMs: []string{"phantom"}}); err == nil {
		t.Fatal("phantom loss not caught")
	}
}
