// Package check provides runtime invariant checking for the simulation
// stack: a pluggable Invariant interface, a registry of the conservation
// laws the paper's algorithms are supposed to preserve (VMs never lost,
// allocations never exceed capacity, energy never negative, IPAC never
// increases active servers, Minimum Slack never worse than FFD), and a
// Checker that observes a running simulation through typed events.
//
// The checker is opt-in: dcsim and testbed emit events only when a
// Checker is attached, so production runs pay nothing. Hand-written
// figure tests exercise the scenarios somebody imagined; the checker
// exists for the scenarios nobody did — randomized stress (package
// check/quick) and fuzzing drive the same invariants over inputs no one
// hand-writes.
package check

import (
	"fmt"
	"strings"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
)

// Kind labels the simulation point an Event was captured at.
type Kind int

const (
	// EvInit fires once, after initial placement / construction.
	EvInit Kind = iota
	// EvStep fires after one simulation step's power accounting.
	EvStep
	// EvConsolidate fires after a full consolidator invocation.
	EvConsolidate
	// EvWatchdog fires after an on-demand overload-relief pass.
	EvWatchdog
	// EvPacking fires after one MinimumSlack call observed through
	// ObserveMinimumSlack.
	EvPacking
	// EvMigration fires at each two-phase migration transition (reserve,
	// commit, rollback) when the harness wires the migration observer.
	EvMigration
	// EvCrash fires after a server crash was applied, carrying the IDs of
	// any VMs lost with it (empty under the evacuate policy).
	EvCrash
	// EvControl fires after one response-time controller step, carrying
	// the hold/open-loop state for the staleness law.
	EvControl
	// EvGuard fires after one control period's bounded event drain,
	// carrying the budget and what the drain actually did.
	EvGuard
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case EvInit:
		return "init"
	case EvStep:
		return "step"
	case EvConsolidate:
		return "consolidate"
	case EvWatchdog:
		return "watchdog"
	case EvPacking:
		return "packing"
	case EvMigration:
		return "migration"
	case EvCrash:
		return "crash"
	case EvControl:
		return "control"
	case EvGuard:
		return "guard"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one observation point. Fields beyond Kind and Step are
// optional; invariants skip events lacking the data they need.
type Event struct {
	Kind Kind
	Step int // trace step or control period; -1 when not applicable

	// DC is the live data center (init, step, consolidate, watchdog).
	DC *cluster.DataCenter

	// Report is the optimizer's account of a consolidate/watchdog pass.
	Report *optimizer.Report
	// Policy is the consolidator's Name() for policy-scoped invariants.
	Policy string
	// OverloadedBefore counts servers that were overloaded when the
	// consolidator was invoked (waking servers is then legitimate).
	OverloadedBefore int

	// PowerW is the instantaneous power accounted for this step and
	// EnergyJ the cumulative energy so far; valid when the Has flags are
	// set.
	PowerW    float64
	EnergyJ   float64
	HasPower  bool
	HasEnergy bool

	// MinSlack carries one observed Algorithm 1 invocation.
	MinSlack *MinSlackObservation

	// Migration carries one two-phase migration transition (EvMigration).
	Migration *MigrationObservation
	// LostVMs lists VM IDs dropped by a server crash under the "lose"
	// policy (EvCrash); conservation laws remove them from their baseline.
	LostVMs []string
	// Control carries one controller step's degradation state (EvControl).
	Control *ControlObservation
	// Guard carries one bounded drain's budget accounting (EvGuard).
	Guard *GuardObservation
}

// MigrationObservation captures one two-phase migration transition.
type MigrationObservation struct {
	VMID  string
	From  string
	To    string
	Phase string // cluster.TxPhase: reserved, committed, rolled_back
}

// ControlObservation captures one response-time controller step for the
// hold-window staleness law. It is a plain struct (no core dependency) the
// harness fills from core.StepResult.
type ControlObservation struct {
	App        string
	Held       bool
	HeldStreak int
	HoldWindow int // the controller's configured bound (with defaults applied)
	OpenLoop   bool
}

// GuardObservation captures one control period's bounded event drain for
// the step-budget law: the limits in force, what the drain consumed, and
// whether exhaustion was converted into an aborted (failed) step.
type GuardObservation struct {
	MaxEvents   int  // event budget in force; 0 = unbounded
	Events      int  // events the drain fired
	MaxSameTime int  // same-instant budget in force; 0 = unbounded
	SameTime    int  // longest same-instant run observed
	Tripped     bool // a budget bound (or watchdog) cut the drain short
	Aborted     bool // the harness failed the step in response
}

// Violation records one broken invariant.
type Violation struct {
	Invariant string
	Kind      Kind
	Step      int
	Detail    string
}

// String renders the violation on one line.
func (v Violation) String() string {
	return fmt.Sprintf("%s [%s step %d]: %s", v.Invariant, v.Kind, v.Step, v.Detail)
}

// Invariant is one law checked against a stream of events. Implementations
// may keep state across events (conservation laws compare against a
// baseline); a fresh instance must be used per run.
type Invariant interface {
	// Name identifies the invariant as module/law.
	Name() string
	// Check inspects one event; a non-nil error is a violation.
	Check(ev Event) error
}

// maxViolations bounds stored violations so a systematically broken run
// cannot grow memory without bound; the count keeps climbing.
const maxViolations = 100

// Checker fans events out to a set of invariants and records violations.
// It is not safe for concurrent use: attach one checker per run.
type Checker struct {
	invs       []Invariant
	violations []Violation
	nViolation int
	nEvents    int
}

// New builds a checker over the given invariants. Use All() for the full
// registry.
func New(invs ...Invariant) *Checker {
	return &Checker{invs: invs}
}

// Observe runs every invariant against the event and records violations.
func (c *Checker) Observe(ev Event) {
	c.nEvents++
	for _, inv := range c.invs {
		if err := inv.Check(ev); err != nil {
			c.nViolation++
			if len(c.violations) < maxViolations {
				c.violations = append(c.violations, Violation{
					Invariant: inv.Name(),
					Kind:      ev.Kind,
					Step:      ev.Step,
					Detail:    err.Error(),
				})
			}
		}
	}
}

// Events returns the number of events observed.
func (c *Checker) Events() int { return c.nEvents }

// NumViolations returns the total number of violations seen (it may
// exceed len(Violations) when the storage cap was hit).
func (c *Checker) NumViolations() int { return c.nViolation }

// Violations returns the recorded violations (capped; do not mutate).
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil when every invariant held, or an error summarizing the
// violations.
func (c *Checker) Err() error {
	if c.nViolation == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s) in %d events:", c.nViolation, c.nEvents)
	for i, v := range c.violations {
		if i == 5 {
			fmt.Fprintf(&b, "\n  ... and %d more", c.nViolation-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return fmt.Errorf("%s", b.String())
}

// MinSlackObservation captures one MinimumSlack invocation: the inputs as
// seen by the algorithm and its result. The bin must be in its pre-Add
// state (MinimumSlack does not mutate it).
type MinSlackObservation struct {
	Bin        *packing.Bin
	Candidates []packing.Item
	Cons       packing.Constraint
	Config     packing.MinSlackConfig
	Result     packing.MinSlackResult
}

// ObserveMinimumSlack runs Algorithm 1 and emits the invocation as an
// EvPacking event, so the packing invariants vet every observed search.
// It returns the result unchanged; with a nil checker it is exactly
// packing.MinimumSlack.
func ObserveMinimumSlack(c *Checker, b *packing.Bin, candidates []packing.Item, cons packing.Constraint, cfg packing.MinSlackConfig) packing.MinSlackResult {
	res := packing.MinimumSlack(b, candidates, cons, cfg)
	if c != nil {
		c.Observe(Event{
			Kind: EvPacking,
			Step: -1,
			MinSlack: &MinSlackObservation{
				Bin:        b,
				Candidates: candidates,
				Cons:       cons,
				Config:     cfg,
				Result:     res,
			},
		})
	}
	return res
}
