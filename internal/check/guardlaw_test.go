package check

import (
	"strings"
	"testing"
)

func guardEvent(g GuardObservation) Event {
	return Event{Kind: EvGuard, Step: 1, Guard: &g}
}

func TestGuardLawCleanObservations(t *testing.T) {
	ck := New(GuardInvariants()...)
	for _, g := range []GuardObservation{
		{},                            // unbudgeted drain
		{MaxEvents: 100, Events: 100}, // at the bound, final event — no trip required
		{MaxEvents: 100, Events: 42},  // under budget
		{MaxEvents: 100, Events: 101, Tripped: true, Aborted: true}, // honest trip
		{MaxSameTime: 10, SameTime: 11, Tripped: true, Aborted: true},
		{MaxEvents: 100, Events: 50, Tripped: true, Aborted: true}, // wall-clock trip under the event bound
	} {
		ck.Observe(guardEvent(g))
	}
	// Non-guard events and nil Guard payloads are ignored.
	ck.Observe(Event{Kind: EvStep, Step: 2})
	ck.Observe(Event{Kind: EvGuard, Step: 3})
	if err := ck.Err(); err != nil {
		t.Fatalf("clean observations flagged: %v", err)
	}
}

func TestGuardLawViolations(t *testing.T) {
	cases := []struct {
		name string
		g    GuardObservation
		want string
	}{
		{"negative accounting", GuardObservation{Events: -1}, "negative"},
		{"silent event overrun", GuardObservation{MaxEvents: 10, Events: 11}, "without tripping"},
		{"silent same-time overrun", GuardObservation{MaxSameTime: 5, SameTime: 6}, "without tripping"},
		{"swallowed trip", GuardObservation{MaxEvents: 10, Events: 11, Tripped: true}, "not converted"},
		{"fabricated abort", GuardObservation{Aborted: true}, "without a budget trip"},
	}
	for _, tc := range cases {
		ck := New(GuardInvariants()...)
		ck.Observe(guardEvent(tc.g))
		vs := ck.Violations()
		if len(vs) != 1 {
			t.Fatalf("%s: %d violations, want 1", tc.name, len(vs))
		}
		if vs[0].Invariant != "guard/step-budget-bounded" {
			t.Fatalf("%s: law = %q", tc.name, vs[0].Invariant)
		}
		if !strings.Contains(vs[0].Detail, tc.want) {
			t.Fatalf("%s: %q does not mention %q", tc.name, vs[0].Detail, tc.want)
		}
	}
}

func TestAllIncludesGuardLaw(t *testing.T) {
	for _, inv := range All() {
		if inv.Name() == "guard/step-budget-bounded" {
			return
		}
	}
	t.Fatal("All() lacks guard/step-budget-bounded")
}
