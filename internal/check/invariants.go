package check

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vdcpower/internal/cluster"
	"vdcpower/internal/packing"
)

// eps absorbs float accumulation error in capacity comparisons, matching
// the tolerances the cluster and packing packages use internally.
const eps = 1e-6

// CountOverloaded returns the number of active servers whose demand
// exceeds capacity at maximum frequency. Hooks compute it before invoking
// a consolidator so Event.OverloadedBefore can scope the IPAC
// active-server monotonicity law.
func CountOverloaded(dc *cluster.DataCenter) int {
	n := 0
	for _, s := range dc.ActiveServers() {
		if s.Overloaded() {
			n++
		}
	}
	return n
}

// ClusterInvariants returns the conservation laws of the cluster
// substrate.
func ClusterInvariants() []Invariant {
	return []Invariant{
		&vmConservation{},
		pstateValid{},
		dvfsCoversDemand{},
		memoryCapacity{},
		indexConsistent{},
	}
}

// OptimizerInvariants returns the laws every consolidator pass must obey.
// VetoesRespected needs a PolicyAuditor and is registered separately.
func OptimizerInvariants() []Invariant {
	return []Invariant{ipacActiveMonotone{}, reportConsistent{}}
}

// PowerInvariants returns the energy-accounting laws.
func PowerInvariants() []Invariant {
	return []Invariant{&energyMonotone{}, powerBounded{}}
}

// PackingInvariants returns the laws vetting observed MinimumSlack calls.
func PackingInvariants() []Invariant {
	return []Invariant{minSlackFeasible{}, minSlackVsFFD{}}
}

// FaultInvariants returns the degradation laws introduced with the fault
// plane: two-phase migrations never double-place, and stale measurements
// never keep closing the loop past the hold window.
func FaultInvariants() []Invariant {
	return []Invariant{noDoublePlacement{}, holdWindowBounded{}}
}

// All returns the full registry: cluster, optimizer, power, packing,
// fault-degradation, and bounded-execution invariants. Add
// VetoesRespected(auditor) when a cost policy is wrapped.
func All() []Invariant {
	var out []Invariant
	out = append(out, ClusterInvariants()...)
	out = append(out, OptimizerInvariants()...)
	out = append(out, PowerInvariants()...)
	out = append(out, PackingInvariants()...)
	out = append(out, FaultInvariants()...)
	out = append(out, GuardInvariants()...)
	return out
}

// vmConservation checks that the VM population never changes: live
// migration, sleep and wake move VMs around but must not create, lose or
// duplicate one. The first event with a data center sets the baseline.
type vmConservation struct {
	baseline map[string]bool
}

func (i *vmConservation) Name() string { return "cluster/vm-conservation" }

func (i *vmConservation) Check(ev Event) error {
	// A crash under the "lose" policy legitimately shrinks the population:
	// the harness reports the lost IDs and the baseline follows, so only
	// unexplained losses violate the law.
	if len(ev.LostVMs) > 0 && i.baseline != nil {
		for _, id := range ev.LostVMs {
			if !i.baseline[id] {
				return fmt.Errorf("crash reports VM %s lost, but it was not in the baseline", id)
			}
			delete(i.baseline, id)
		}
	}
	if ev.DC == nil {
		return nil
	}
	current := map[string]bool{}
	for _, v := range ev.DC.VMs() {
		if current[v.ID] {
			return fmt.Errorf("VM %s hosted twice", v.ID)
		}
		current[v.ID] = true
	}
	if i.baseline == nil {
		i.baseline = current
		return nil
	}
	if len(current) != len(i.baseline) {
		return fmt.Errorf("VM population changed: %d VMs, baseline %d (%s)",
			len(current), len(i.baseline), diffIDs(i.baseline, current))
	}
	for id := range i.baseline {
		if !current[id] {
			return fmt.Errorf("VM %s lost since baseline", id)
		}
	}
	return nil
}

// diffIDs summarizes a set difference for diagnostics.
func diffIDs(baseline, current map[string]bool) string {
	var lost, gained []string
	for id := range baseline {
		if !current[id] {
			lost = append(lost, id)
		}
	}
	for id := range current {
		if !baseline[id] {
			gained = append(gained, id)
		}
	}
	sort.Strings(lost)
	sort.Strings(gained)
	const show = 3
	if len(lost) > show {
		lost = append(lost[:show], "...")
	}
	if len(gained) > show {
		gained = append(gained[:show], "...")
	}
	return fmt.Sprintf("lost [%s] gained [%s]", strings.Join(lost, " "), strings.Join(gained, " "))
}

// pstateValid checks that every server's current frequency is one of its
// spec's P-states — DVFS can only select table entries.
type pstateValid struct{}

func (pstateValid) Name() string { return "cluster/pstate-valid" }

func (pstateValid) Check(ev Event) error {
	if ev.DC == nil {
		return nil
	}
	for _, s := range ev.DC.Servers {
		found := false
		for _, ps := range s.Spec.PStates {
			//lint:ignore floatcompare frequencies come verbatim from the P-state table, never computed
			if ps == s.Freq() {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("server %s runs at %v GHz, not in P-states %v", s.ID, s.Freq(), s.Spec.PStates)
		}
	}
	return nil
}

// dvfsCoversDemand checks the arbitrator's frequency decision: whenever a
// server's aggregate demand fits its capacity at maximum frequency, the
// chosen P-state must grant at least that demand — DVFS saves power by
// shaving slack, never by starving hosted VMs. The law holds only after
// arbitration ran for the current demands, so it is scoped to step and
// init events; mid-step states (a consolidate pass sees frequencies from
// the previous step) are transitional.
type dvfsCoversDemand struct{}

func (dvfsCoversDemand) Name() string { return "cluster/dvfs-covers-demand" }

func (dvfsCoversDemand) Check(ev Event) error {
	if ev.DC == nil || (ev.Kind != EvStep && ev.Kind != EvInit) {
		return nil
	}
	for _, s := range ev.DC.ActiveServers() {
		d := s.TotalDemand()
		if d > s.Spec.Capacity()+eps {
			continue // overloaded: no P-state can cover it
		}
		if got := s.Spec.CapacityAt(s.Freq()); got+eps < d {
			return fmt.Errorf("server %s grants %.4f GHz at %v GHz but demand is %.4f GHz (capacity %.4f)",
				s.ID, got, s.Freq(), d, s.Spec.Capacity())
		}
	}
	return nil
}

// memoryCapacity checks the administrator constraint of Section V: VM
// memory is never oversubscribed on any server.
type memoryCapacity struct{}

func (memoryCapacity) Name() string { return "cluster/memory-capacity" }

func (memoryCapacity) Check(ev Event) error {
	if ev.DC == nil {
		return nil
	}
	for _, s := range ev.DC.Servers {
		if m := s.TotalMemory(); m > s.Spec.MemoryGB+eps {
			return fmt.Errorf("server %s hosts %.2f GB of VM memory, capacity %.2f GB", s.ID, m, s.Spec.MemoryGB)
		}
	}
	return nil
}

// indexConsistent re-checks the data center's own structural invariants:
// the VM index matches hosting, and no sleeping server hosts VMs.
type indexConsistent struct{}

func (indexConsistent) Name() string { return "cluster/index-consistent" }

func (indexConsistent) Check(ev Event) error {
	if ev.DC == nil {
		return nil
	}
	return ev.DC.CheckInvariants()
}

// ipacActiveMonotone checks the paper's IPAC progress guarantee: when no
// server was overloaded at invocation time, consolidation only ever
// drains and sleeps servers, so the active count cannot grow. Overload
// relief may legitimately wake servers, hence the OverloadedBefore scope;
// pMapper gives no such guarantee, hence the policy scope.
type ipacActiveMonotone struct{}

func (ipacActiveMonotone) Name() string { return "optimizer/ipac-active-monotone" }

func (ipacActiveMonotone) Check(ev Event) error {
	if ev.Kind != EvConsolidate || ev.Report == nil {
		return nil
	}
	if !strings.HasPrefix(ev.Policy, "IPAC") || ev.OverloadedBefore > 0 {
		return nil
	}
	if ev.Report.ActiveAfter > ev.Report.ActiveBefore {
		return fmt.Errorf("active servers grew %d → %d with no overload to relieve",
			ev.Report.ActiveBefore, ev.Report.ActiveAfter)
	}
	return nil
}

// reportConsistent checks that an optimizer report is an honest account:
// counters are non-negative, every counted migration has a recorded move,
// and the claimed active-server count matches the data center.
type reportConsistent struct{}

func (reportConsistent) Name() string { return "optimizer/report-consistent" }

func (reportConsistent) Check(ev Event) error {
	if (ev.Kind != EvConsolidate && ev.Kind != EvWatchdog) || ev.Report == nil {
		return nil
	}
	r := ev.Report
	if r.Migrations < 0 || r.Vetoed < 0 || r.Rounds < 0 || r.Unresolved < 0 || r.FailedMoves < 0 {
		return fmt.Errorf("negative counter in report: %s", r)
	}
	if r.Migrations != len(r.Moves) {
		return fmt.Errorf("report counts %d migrations but records %d moves", r.Migrations, len(r.Moves))
	}
	if ev.DC != nil && r.ActiveAfter != ev.DC.NumActive() {
		return fmt.Errorf("report claims %d active servers, data center has %d", r.ActiveAfter, ev.DC.NumActive())
	}
	return nil
}

// energyMonotone checks the meter laws: cumulative energy is finite,
// non-negative, and never decreases.
type energyMonotone struct {
	seen  bool
	lastJ float64
}

func (i *energyMonotone) Name() string { return "power/energy-monotone" }

func (i *energyMonotone) Check(ev Event) error {
	if !ev.HasEnergy {
		return nil
	}
	j := ev.EnergyJ
	if math.IsNaN(j) || math.IsInf(j, 0) {
		return fmt.Errorf("energy reading %v is not finite", j)
	}
	if j < 0 {
		return fmt.Errorf("negative cumulative energy %v J", j)
	}
	if i.seen && j < i.lastJ-eps {
		return fmt.Errorf("energy decreased %.6g J → %.6g J", i.lastJ, j)
	}
	i.seen = true
	i.lastJ = j
	return nil
}

// powerBounded checks instantaneous power: non-negative, finite, and
// within the fleet's physical ceiling (every server at max power plus
// every sleep state).
type powerBounded struct{}

func (powerBounded) Name() string { return "power/power-bounded" }

func (powerBounded) Check(ev Event) error {
	if !ev.HasPower {
		return nil
	}
	p := ev.PowerW
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return fmt.Errorf("power reading %v is not finite", p)
	}
	if p < 0 {
		return fmt.Errorf("negative power %v W", p)
	}
	if ev.DC == nil {
		return nil
	}
	ceil := 0.0
	for _, s := range ev.DC.Servers {
		ceil += s.Spec.MaxPower() + s.Spec.PSleep
	}
	if p > ceil+eps {
		return fmt.Errorf("power %.1f W exceeds fleet ceiling %.1f W", p, ceil)
	}
	return nil
}

// minSlackFeasible checks one observed Algorithm 1 invocation: the chosen
// set is a duplicate-free subset of the candidates, the constraint admits
// it on the bin, and the reported slack is exactly the bin's slack minus
// the chosen CPU.
type minSlackFeasible struct{}

func (minSlackFeasible) Name() string { return "packing/minslack-feasible" }

func (minSlackFeasible) Check(ev Event) error {
	if ev.Kind != EvPacking || ev.MinSlack == nil {
		return nil
	}
	obs := ev.MinSlack
	byID := map[string]packing.Item{}
	for _, it := range obs.Candidates {
		byID[it.ID] = it
	}
	seen := map[string]bool{}
	cpu := 0.0
	for _, it := range obs.Result.Chosen {
		if _, ok := byID[it.ID]; !ok {
			return fmt.Errorf("chosen item %q is not a candidate", it.ID)
		}
		if seen[it.ID] {
			return fmt.Errorf("item %q chosen twice", it.ID)
		}
		seen[it.ID] = true
		cpu += it.CPU
	}
	if obs.Cons != nil && len(obs.Result.Chosen) > 0 && !obs.Cons.Fits(obs.Bin, obs.Result.Chosen) {
		return fmt.Errorf("constraint %s rejects the chosen set on bin %s", obs.Cons.Name(), obs.Bin.ID)
	}
	want := obs.Bin.Slack() - cpu
	if math.Abs(want-obs.Result.Slack) > eps {
		return fmt.Errorf("slack accounting off: reported %.6f, bin slack %.6f − chosen %.6f = %.6f",
			obs.Result.Slack, obs.Bin.Slack(), cpu, want)
	}
	if obs.Result.Slack < -eps {
		return fmt.Errorf("negative slack %.6f: chosen set overflows the bin", obs.Result.Slack)
	}
	return nil
}

// minSlackVsFFD checks the quality guarantee that makes Algorithm 1 worth
// its search: its first DFS path is exactly greedy decreasing first-fit,
// so with a node budget covering the candidates the result can never be
// worse than FFD on the same bin — except when the ε-optimal early exit
// fires first, which only happens at slack ≤ ε. Hence the bound is
// max(FFD slack, ε).
type minSlackVsFFD struct{}

func (minSlackVsFFD) Name() string { return "packing/minslack-vs-ffd" }

func (minSlackVsFFD) Check(ev Event) error {
	if ev.Kind != EvPacking || ev.MinSlack == nil {
		return nil
	}
	obs := ev.MinSlack
	budget := obs.Config.MaxNodes
	if budget <= 0 {
		budget = packing.DefaultMinSlackConfig().MaxNodes
	}
	if budget < len(obs.Candidates) {
		return nil // the guarantee needs the greedy path inside the budget
	}
	bound := SingleBinFFDSlack(obs.Bin, obs.Candidates, obs.Cons)
	if obs.Config.Epsilon > bound {
		bound = obs.Config.Epsilon
	}
	if obs.Result.Slack > bound+eps {
		return fmt.Errorf("slack %.6f worse than single-bin FFD bound %.6f", obs.Result.Slack, bound)
	}
	return nil
}

// SingleBinFFDSlack returns the slack left by greedy decreasing-order
// first-fit of the candidates onto the bin alone — the baseline Minimum
// Slack must never lose to. The bin is not mutated.
func SingleBinFFDSlack(b *packing.Bin, candidates []packing.Item, cons packing.Constraint) float64 {
	sorted := append([]packing.Item(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool {
		//lint:ignore floatcompare exact tie-break for a deterministic sort order
		if sorted[i].CPU != sorted[j].CPU {
			return sorted[i].CPU > sorted[j].CPU
		}
		return sorted[i].ID < sorted[j].ID
	})
	var chosen []packing.Item
	slack := b.Slack()
	for _, it := range sorted {
		if it.CPU > slack+1e-12 {
			continue
		}
		chosen = append(chosen, it)
		if cons != nil && !cons.Fits(b, chosen) {
			chosen = chosen[:len(chosen)-1]
			continue
		}
		slack -= it.CPU
	}
	return slack
}
