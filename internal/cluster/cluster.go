// Package cluster models the virtualized data center of Figure 1: physical
// servers with DVFS and sleep states, VMs with CPU-cycle demands
// determined by the application-level controllers, placement, and live
// migration. It is the substrate both optimizers (IPAC and pMapper)
// operate on.
package cluster

import (
	"fmt"
	"sort"

	"vdcpower/internal/power"
	"vdcpower/internal/telemetry"
)

// VM is a virtual machine hosting one tier of one application. Demand is
// the CPU resource requirement in GHz decided by the application-level
// response time controller (the paper's c_ij).
type VM struct {
	ID       string
	App      string // owning application, "" if stand-alone
	Tier     int
	Demand   float64 // GHz
	MemoryGB float64
}

// Validate checks VM parameters.
func (v *VM) Validate() error {
	if v.ID == "" {
		return fmt.Errorf("cluster: VM with empty ID")
	}
	if v.Demand < 0 || v.MemoryGB < 0 {
		return fmt.Errorf("cluster: VM %s has negative demand or memory", v.ID)
	}
	return nil
}

// State is a server's power state.
type State int

const (
	// Active means the server is powered on and hosting VMs.
	Active State = iota
	// Sleeping means the server is suspended and consumes only PSleep.
	Sleeping
	// Failed means the server has crashed: it hosts nothing, draws no
	// power, and accepts no placements for the rest of the run.
	Failed
)

func (s State) String() string {
	switch s {
	case Sleeping:
		return "sleeping"
	case Failed:
		return "failed"
	}
	return "active"
}

// Server is one physical machine.
type Server struct {
	ID       string
	Spec     power.Spec
	state    State
	freq     float64 // current per-core frequency (GHz)
	vms      []*VM
	cordoned bool
}

// NewServer creates an active server at maximum frequency.
func NewServer(id string, spec power.Spec) *Server {
	if err := spec.Validate(); err != nil {
		//lint:ignore panicpolicy invariant: the fleet is built from the static spec table, an invalid spec is a programming error
		panic(err)
	}
	return &Server{ID: id, Spec: spec, state: Active, freq: spec.MaxFreq}
}

// State returns the current power state.
func (s *Server) State() State { return s.state }

// Freq returns the current per-core frequency in GHz.
func (s *Server) Freq() float64 { return s.freq }

// SetFreq throttles the processor to the given P-state frequency. It
// panics if f is not one of the spec's P-states.
func (s *Server) SetFreq(f float64) {
	for _, ps := range s.Spec.PStates {
		//lint:ignore floatcompare frequencies come verbatim from the P-state table, never computed
		if ps == f {
			s.freq = f
			return
		}
	}
	//lint:ignore panicpolicy documented contract: frequencies must come from the spec's P-state table
	panic(fmt.Sprintf("cluster: server %s: %v GHz is not a P-state", s.ID, f))
}

// ApplyDVFS picks the lowest P-state covering the current aggregate
// demand and applies it — the CPU resource arbitrator's frequency
// decision. It returns the chosen frequency.
func (s *Server) ApplyDVFS() float64 {
	s.freq = s.Spec.LowestFreqFor(s.TotalDemand())
	return s.freq
}

// Sleep suspends the server. It panics if VMs are still hosted: the
// caller must migrate them away first.
func (s *Server) Sleep() {
	if len(s.vms) > 0 {
		//lint:ignore panicpolicy state-machine invariant: sleeping a non-empty server is a scheduler bug
		panic(fmt.Sprintf("cluster: server %s: cannot sleep with %d VMs", s.ID, len(s.vms)))
	}
	s.state = Sleeping
}

// Wake powers the server back on at maximum frequency.
func (s *Server) Wake() {
	if s.state == Failed {
		//lint:ignore panicpolicy state-machine invariant: a crashed server stays down for the rest of the run
		panic(fmt.Sprintf("cluster: server %s: cannot wake a failed server", s.ID))
	}
	s.state = Active
	s.freq = s.Spec.MaxFreq
}

// Cordon marks the server for maintenance: it accepts no new VMs (the
// optimizer drains it with priority) but keeps serving its current ones.
func (s *Server) Cordon() { s.cordoned = true }

// Uncordon returns the server to normal scheduling.
func (s *Server) Uncordon() { s.cordoned = false }

// Cordoned reports whether the server is in maintenance mode.
func (s *Server) Cordoned() bool { return s.cordoned }

// VMs returns the hosted VMs (shared slice: do not mutate).
func (s *Server) VMs() []*VM { return s.vms }

// NumVMs returns the number of hosted VMs.
func (s *Server) NumVMs() int { return len(s.vms) }

// TotalDemand returns the sum of hosted VM CPU demands in GHz.
func (s *Server) TotalDemand() float64 {
	d := 0.0
	for _, v := range s.vms {
		d += v.Demand
	}
	return d
}

// TotalMemory returns the sum of hosted VM memory in GB.
func (s *Server) TotalMemory() float64 {
	m := 0.0
	for _, v := range s.vms {
		m += v.MemoryGB
	}
	return m
}

// Slack returns unallocated CPU capacity at maximum frequency in GHz —
// the quantity Algorithm 1 minimizes.
func (s *Server) Slack() float64 { return s.Spec.Capacity() - s.TotalDemand() }

// Utilization returns demand relative to the capacity available at the
// current frequency.
func (s *Server) Utilization() float64 {
	cap := s.Spec.CapacityAt(s.freq)
	if cap <= 0 {
		return 0
	}
	u := s.TotalDemand() / cap
	if u > 1 {
		u = 1
	}
	return u
}

// Overloaded reports whether demand exceeds capacity at max frequency.
func (s *Server) Overloaded() bool { return s.TotalDemand() > s.Spec.Capacity()+1e-9 }

// Power returns current power draw in watts.
func (s *Server) Power() float64 {
	switch s.state {
	case Sleeping:
		return s.Spec.PSleep
	case Failed:
		return 0
	}
	return s.Spec.Power(s.freq, s.Utilization())
}

// host attaches a VM (internal; use DataCenter.Place / Migrate).
func (s *Server) host(v *VM) { s.vms = append(s.vms, v) }

// unhost detaches a VM.
func (s *Server) unhost(v *VM) bool {
	for i, x := range s.vms {
		if x == v {
			s.vms = append(s.vms[:i], s.vms[i+1:]...)
			return true
		}
	}
	return false
}

// Constraint decides whether a server may host a candidate set of
// additional VMs. Implementations must be pure. This is the "more general
// constraint" hook of Algorithm 1.
type Constraint interface {
	// Admits reports whether srv can host its current VMs plus extra.
	Admits(srv *Server, extra []*VM) bool
	// Name identifies the constraint for diagnostics.
	Name() string
}

// CPUConstraint admits placements whose total demand fits the server's
// capacity at maximum frequency, with an optional headroom fraction.
type CPUConstraint struct {
	// Headroom reserves a fraction of capacity (0.1 = keep 10% free) to
	// absorb short-term growth between optimizer invocations.
	Headroom float64
}

// Admits implements Constraint.
func (c CPUConstraint) Admits(srv *Server, extra []*VM) bool {
	d := srv.TotalDemand()
	for _, v := range extra {
		d += v.Demand
	}
	return d <= srv.Spec.Capacity()*(1-c.Headroom)+1e-9
}

// Name implements Constraint.
func (c CPUConstraint) Name() string { return "cpu" }

// MemoryConstraint admits placements whose total VM memory fits the
// server's physical memory (the administrator-defined constraint used in
// the Fig. 6 simulations).
type MemoryConstraint struct{}

// Admits implements Constraint.
func (MemoryConstraint) Admits(srv *Server, extra []*VM) bool {
	m := srv.TotalMemory()
	for _, v := range extra {
		m += v.MemoryGB
	}
	return m <= srv.Spec.MemoryGB+1e-9
}

// Name implements Constraint.
func (MemoryConstraint) Name() string { return "memory" }

// And combines constraints conjunctively.
type And []Constraint

// Admits implements Constraint.
func (a And) Admits(srv *Server, extra []*VM) bool {
	for _, c := range a {
		if !c.Admits(srv, extra) {
			return false
		}
	}
	return true
}

// Name implements Constraint.
func (a And) Name() string {
	n := "and("
	for i, c := range a {
		if i > 0 {
			n += ","
		}
		n += c.Name()
	}
	return n + ")"
}

// Migration records one VM move for cost accounting.
type Migration struct {
	VM   *VM
	From *Server
	To   *Server
}

// DataCenter is the collection of servers plus a VM→server index.
type DataCenter struct {
	Servers  []*Server
	index    map[string]*Server      // VM ID → hosting server
	trace    *telemetry.Track        // set via SetTrace; nil keeps tracing off
	inflight map[string]*MigrationTx // VM ID → reserved two-phase migration
	observer func(*MigrationTx)      // set via SetMigrationObserver; may be nil
}

// SetTrace implements telemetry.Traceable: migrations, server wakes and
// idle-sleep sweeps record onto tk.
func (dc *DataCenter) SetTrace(tk *telemetry.Track) { dc.trace = tk }

// NewDataCenter builds a data center from servers with unique IDs.
func NewDataCenter(servers []*Server) (*DataCenter, error) {
	dc := &DataCenter{
		Servers:  servers,
		index:    make(map[string]*Server),
		inflight: make(map[string]*MigrationTx),
	}
	seen := map[string]bool{}
	for _, s := range servers {
		if seen[s.ID] {
			return nil, fmt.Errorf("cluster: duplicate server ID %q", s.ID)
		}
		seen[s.ID] = true
		for _, v := range s.vms {
			dc.index[v.ID] = s
		}
	}
	return dc, nil
}

// Place hosts a previously unplaced VM on srv, waking it if needed.
func (dc *DataCenter) Place(v *VM, srv *Server) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if _, ok := dc.index[v.ID]; ok {
		return fmt.Errorf("cluster: VM %s already placed", v.ID)
	}
	if srv.cordoned {
		return fmt.Errorf("cluster: server %s is cordoned for maintenance", srv.ID)
	}
	if srv.state == Failed {
		return fmt.Errorf("cluster: server %s has failed", srv.ID)
	}
	if srv.state == Sleeping {
		srv.Wake()
		dc.trace.Event("cluster.wake").Str("server", srv.ID).End()
	}
	srv.host(v)
	dc.index[v.ID] = srv
	return nil
}

// HostOf returns the server hosting VM id, or nil.
func (dc *DataCenter) HostOf(id string) *Server { return dc.index[id] }

// Migrate moves v to target (live migration). The source server is left
// active; the optimizer decides separately whether to sleep it. Migrate
// is the atomic form of the two-phase BeginMigration/Commit protocol:
// reserve and commit in one call, for callers with no abort path.
func (dc *DataCenter) Migrate(v *VM, target *Server) (Migration, error) {
	tx, err := dc.BeginMigration(v, target)
	if err != nil {
		return Migration{}, err
	}
	return tx.Commit()
}

// Remove unplaces a VM entirely (application decommissioned).
func (dc *DataCenter) Remove(v *VM) error {
	src, ok := dc.index[v.ID]
	if !ok {
		return fmt.Errorf("cluster: VM %s is not placed", v.ID)
	}
	src.unhost(v)
	delete(dc.index, v.ID)
	return nil
}

// VMs returns all placed VMs in deterministic (ID) order.
func (dc *DataCenter) VMs() []*VM {
	var out []*VM
	for _, s := range dc.Servers {
		out = append(out, s.vms...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveServers returns servers currently powered on.
func (dc *DataCenter) ActiveServers() []*Server {
	var out []*Server
	for _, s := range dc.Servers {
		if s.state == Active {
			out = append(out, s)
		}
	}
	return out
}

// NumActive returns the count of active servers.
func (dc *DataCenter) NumActive() int { return len(dc.ActiveServers()) }

// TotalPower returns the current total power draw in watts.
func (dc *DataCenter) TotalPower() float64 {
	p := 0.0
	for _, s := range dc.Servers {
		p += s.Power()
	}
	return p
}

// SleepIdle puts every active, empty server to sleep and returns how many
// were suspended.
func (dc *DataCenter) SleepIdle() int {
	n := 0
	for _, s := range dc.Servers {
		if s.state == Active && len(s.vms) == 0 {
			s.Sleep()
			n++
		}
	}
	if n > 0 {
		dc.trace.Event("cluster.sleep_idle").Int("servers", n).End()
	}
	return n
}

// CheckInvariants verifies index consistency; tests call it after
// optimizer passes.
func (dc *DataCenter) CheckInvariants() error {
	count := 0
	for _, s := range dc.Servers {
		for _, v := range s.vms {
			count++
			if dc.index[v.ID] != s {
				return fmt.Errorf("cluster: VM %s hosted on %s but indexed to %v", v.ID, s.ID, dc.index[v.ID])
			}
		}
		if s.state == Sleeping && len(s.vms) > 0 {
			return fmt.Errorf("cluster: sleeping server %s hosts %d VMs", s.ID, len(s.vms))
		}
		if s.state == Failed && len(s.vms) > 0 {
			return fmt.Errorf("cluster: failed server %s hosts %d VMs", s.ID, len(s.vms))
		}
	}
	if count != len(dc.index) {
		return fmt.Errorf("cluster: index has %d entries, servers host %d VMs", len(dc.index), count)
	}
	for id, tx := range dc.inflight {
		if dc.index[id] != tx.src {
			return fmt.Errorf("cluster: in-flight migration of VM %s not hosted on its source %s", id, tx.src.ID)
		}
	}
	return nil
}
