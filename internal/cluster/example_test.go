package cluster_test

import (
	"fmt"

	"vdcpower/internal/cluster"
	"vdcpower/internal/power"
)

func ExampleDataCenter() {
	dc, err := cluster.NewDataCenter([]*cluster.Server{
		cluster.NewServer("s1", power.TypeHighEnd()),
		cluster.NewServer("s2", power.TypeLow()),
	})
	if err != nil {
		panic(err)
	}
	vm := &cluster.VM{ID: "web", Demand: 1.5, MemoryGB: 2}
	if err := dc.Place(vm, dc.Servers[1]); err != nil {
		panic(err)
	}
	// Live-migrate to the efficient server and sleep the empty one.
	if _, err := dc.Migrate(vm, dc.Servers[0]); err != nil {
		panic(err)
	}
	dc.SleepIdle()
	fmt.Printf("host=%s active=%d\n", dc.HostOf("web").ID, dc.NumActive())
	// Output: host=s1 active=1
}

func ExampleMigrationModel() {
	m := cluster.DefaultMigrationModel()
	// A 2 GB VM over a 1 Gbps migration network.
	fmt.Printf("duration %.1fs downtime %.0fms\n", m.Duration(2), 1000*m.Downtime(2))
	// Output: duration 18.9s downtime 38ms
}
