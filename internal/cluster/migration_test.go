package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMigrationModelValid(t *testing.T) {
	if err := DefaultMigrationModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationModelValidate(t *testing.T) {
	cases := map[string]MigrationModel{
		"zero bandwidth": {BandwidthGbps: 0, DirtyFraction: 0.1, Passes: 2},
		"dirty >= 1":     {BandwidthGbps: 1, DirtyFraction: 1.0, Passes: 2},
		"dirty < 0":      {BandwidthGbps: 1, DirtyFraction: -0.1, Passes: 2},
		"no passes":      {BandwidthGbps: 1, DirtyFraction: 0.1, Passes: 0},
		"neg overhead":   {BandwidthGbps: 1, DirtyFraction: 0.1, Passes: 2, StopOverheadMS: -1},
	}
	for name, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestMigrationDurationKnownValue(t *testing.T) {
	// 8 GB VM over 1 Gbps (= 0.125 GB/s), no redirtying, one pass:
	// duration = 64 s + downtime; downtime = 0 residual + 30 ms.
	m := MigrationModel{BandwidthGbps: 1, DirtyFraction: 0, Passes: 1, StopOverheadMS: 30}
	down := m.Downtime(8)
	if math.Abs(down-0.03) > 1e-12 {
		t.Fatalf("downtime = %v, want 0.03", down)
	}
	dur := m.Duration(8)
	if math.Abs(dur-(64+0.03)) > 1e-9 {
		t.Fatalf("duration = %v, want 64.03", dur)
	}
}

func TestMigrationSecondsScale(t *testing.T) {
	// The paper's motivation: migrations take seconds to minutes. With
	// the default model a 2 GB VM should take on the order of 10 s total
	// with sub-second downtime.
	m := DefaultMigrationModel()
	dur := m.Duration(2)
	if dur < 5 || dur > 120 {
		t.Fatalf("2 GB migration duration %v s implausible", dur)
	}
	down := m.Downtime(2)
	if down <= 0 || down > 1 {
		t.Fatalf("2 GB downtime %v s implausible", down)
	}
	if down >= dur {
		t.Fatal("downtime must be a small part of duration")
	}
}

func TestMigrationZeroMemory(t *testing.T) {
	m := DefaultMigrationModel()
	if got := m.Duration(0); math.Abs(got-0.03) > 1e-9 {
		t.Fatalf("zero-memory duration = %v", got)
	}
	if m.NetworkGB(0) != 0 {
		t.Fatal("zero-memory network traffic must be 0")
	}
}

// Properties: duration and downtime increase with memory; more passes
// reduce downtime but increase duration and network traffic.
func TestMigrationModelProperties(t *testing.T) {
	f := func(rawMem float64) bool {
		mem := 0.1 + math.Mod(math.Abs(rawMem), 64)
		m := DefaultMigrationModel()
		if m.Duration(mem) <= m.Duration(mem/2) {
			return false
		}
		if m.Downtime(mem) <= m.Downtime(mem/2) {
			return false
		}
		more := m
		more.Passes = m.Passes + 2
		if more.Downtime(mem) >= m.Downtime(mem) {
			return false
		}
		if more.Duration(mem) <= m.Duration(mem) {
			return false
		}
		if more.NetworkGB(mem) <= m.NetworkGB(mem) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkGBAtLeastMemory(t *testing.T) {
	m := DefaultMigrationModel()
	if m.NetworkGB(4) < 4 {
		t.Fatalf("network traffic %v below memory size", m.NetworkGB(4))
	}
}
