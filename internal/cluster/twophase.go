package cluster

import (
	"fmt"
	"sort"
)

// TxPhase labels the lifecycle of a two-phase migration.
type TxPhase string

// Two-phase migration lifecycle. A migration is reserved (the target is
// woken and pinned, the VM keeps running on the source throughout the
// pre-copy), then either committed (ownership flips atomically at the
// stop-and-copy instant) or rolled back (the VM stays on the source, the
// woken target is re-slept if nothing else claimed it). No intermediate
// state ever hosts the VM twice or zero times.
const (
	TxReserved   TxPhase = "reserved"
	TxCommitted  TxPhase = "committed"
	TxRolledBack TxPhase = "rolled_back"
)

// MigrationTx is one in-flight two-phase live migration, created by
// BeginMigration. Exactly one of Commit or Rollback must follow.
type MigrationTx struct {
	dc      *DataCenter
	vm      *VM
	src     *Server
	dst     *Server
	wokeDst bool
	phase   TxPhase
}

// VM returns the migrating VM.
func (tx *MigrationTx) VM() *VM { return tx.vm }

// Source returns the server the VM runs on until commit.
func (tx *MigrationTx) Source() *Server { return tx.src }

// Target returns the reserved destination server.
func (tx *MigrationTx) Target() *Server { return tx.dst }

// Phase returns the transaction's lifecycle phase.
func (tx *MigrationTx) Phase() TxPhase { return tx.phase }

// SetMigrationObserver installs a callback fired at every two-phase
// transition (reserve, commit, rollback) — harnesses feed these events to
// the invariant checker so mid-flight placements are validated too. A nil
// observer disables observation.
func (dc *DataCenter) SetMigrationObserver(fn func(*MigrationTx)) { dc.observer = fn }

// observe fires the observer if one is installed.
func (dc *DataCenter) observe(tx *MigrationTx) {
	if dc.observer != nil {
		dc.observer(tx)
	}
}

// BeginMigration reserves a live migration of v to target: the target is
// woken (so capacity is real before the pre-copy starts) and the move is
// registered in-flight, but the VM keeps running — and stays hosted — on
// its source until Commit. An aborted pre-copy calls Rollback and the
// placement is untouched.
func (dc *DataCenter) BeginMigration(v *VM, target *Server) (*MigrationTx, error) {
	src, ok := dc.index[v.ID]
	if !ok {
		return nil, fmt.Errorf("cluster: VM %s is not placed", v.ID)
	}
	if src == target {
		return nil, fmt.Errorf("cluster: VM %s already on %s", v.ID, target.ID)
	}
	if target.cordoned {
		return nil, fmt.Errorf("cluster: server %s is cordoned for maintenance", target.ID)
	}
	if target.state == Failed {
		return nil, fmt.Errorf("cluster: server %s has failed", target.ID)
	}
	if prev, busy := dc.inflight[v.ID]; busy {
		return nil, fmt.Errorf("cluster: VM %s already migrating to %s", v.ID, prev.dst.ID)
	}
	tx := &MigrationTx{dc: dc, vm: v, src: src, dst: target, phase: TxReserved}
	if target.state == Sleeping {
		target.Wake()
		tx.wokeDst = true
		dc.trace.Event("cluster.wake").Str("server", target.ID).End()
	}
	dc.inflight[v.ID] = tx
	dc.observe(tx)
	return tx, nil
}

// Commit completes the migration: ownership flips from source to target
// at the stop-and-copy instant. The transaction must be in the reserved
// phase and both endpoints must have survived the pre-copy.
func (tx *MigrationTx) Commit() (Migration, error) {
	if tx.phase != TxReserved {
		return Migration{}, fmt.Errorf("cluster: commit of %s migration for VM %s", tx.phase, tx.vm.ID)
	}
	dc := tx.dc
	if dc.index[tx.vm.ID] != tx.src {
		return Migration{}, fmt.Errorf("cluster: VM %s left source %s mid-migration", tx.vm.ID, tx.src.ID)
	}
	if tx.dst.state != Active {
		return Migration{}, fmt.Errorf("cluster: migration target %s is %s", tx.dst.ID, tx.dst.state)
	}
	if !tx.src.unhost(tx.vm) {
		return Migration{}, fmt.Errorf("cluster: index corruption for VM %s", tx.vm.ID)
	}
	tx.dst.host(tx.vm)
	dc.index[tx.vm.ID] = tx.dst
	delete(dc.inflight, tx.vm.ID)
	tx.phase = TxCommitted
	// Recorded as a zero-duration complete span (not an instant) so trace
	// viewers show migrations as children of the consolidation pass.
	dc.trace.Start("cluster.migrate").Str("vm", tx.vm.ID).
		Str("from", tx.src.ID).Str("to", tx.dst.ID).End()
	dc.observe(tx)
	return Migration{VM: tx.vm, From: tx.src, To: tx.dst}, nil
}

// Rollback abandons the migration: the VM stays on its source, and the
// target is re-slept if this reservation woke it and nothing else has
// claimed it since (no hosted VMs, no other in-flight reservation).
func (tx *MigrationTx) Rollback() error {
	if tx.phase != TxReserved {
		return fmt.Errorf("cluster: rollback of %s migration for VM %s", tx.phase, tx.vm.ID)
	}
	dc := tx.dc
	delete(dc.inflight, tx.vm.ID)
	tx.phase = TxRolledBack
	if tx.wokeDst && tx.dst.state == Active && len(tx.dst.vms) == 0 && !dc.hasReservation(tx.dst) {
		tx.dst.Sleep()
		dc.trace.Event("cluster.resleep").Str("server", tx.dst.ID).End()
	}
	dc.trace.Event("cluster.migrate_abort").Str("vm", tx.vm.ID).
		Str("from", tx.src.ID).Str("to", tx.dst.ID).End()
	dc.observe(tx)
	return nil
}

// hasReservation reports whether any in-flight migration targets srv.
func (dc *DataCenter) hasReservation(srv *Server) bool {
	for _, tx := range dc.inflight {
		if tx.dst == srv {
			return true
		}
	}
	return false
}

// InFlight returns the in-flight migration transactions in deterministic
// (VM ID) order.
func (dc *DataCenter) InFlight() []*MigrationTx {
	if len(dc.inflight) == 0 {
		return nil
	}
	out := make([]*MigrationTx, 0, len(dc.inflight))
	for _, tx := range dc.inflight {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].vm.ID < out[j].vm.ID })
	return out
}
