package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"vdcpower/internal/power"
)

// Stateful property test: a long random sequence of data-center
// operations must never break the structural invariants. This is the
// kind of churn the optimizer inflicts over weeks of simulated time.
func TestRandomOperationSequencePreservesInvariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs := power.AllTypes()
		var servers []*Server
		for i := 0; i < 6; i++ {
			servers = append(servers, NewServer(fmt.Sprintf("s%d", i), specs[i%3]))
		}
		dc, err := NewDataCenter(servers)
		if err != nil {
			t.Fatal(err)
		}
		var placed []*VM
		nextID := 0
		for op := 0; op < 500; op++ {
			switch rng.Intn(6) {
			case 0, 1: // place a new VM
				v := &VM{
					ID:       fmt.Sprintf("vm%d", nextID),
					Demand:   rng.Float64() * 2,
					MemoryGB: rng.Float64() * 2,
				}
				nextID++
				if err := dc.Place(v, servers[rng.Intn(len(servers))]); err != nil {
					t.Fatalf("seed %d op %d: place: %v", seed, op, err)
				}
				placed = append(placed, v)
			case 2: // migrate a random VM
				if len(placed) == 0 {
					continue
				}
				v := placed[rng.Intn(len(placed))]
				target := servers[rng.Intn(len(servers))]
				if dc.HostOf(v.ID) == target {
					continue
				}
				if _, err := dc.Migrate(v, target); err != nil {
					t.Fatalf("seed %d op %d: migrate: %v", seed, op, err)
				}
			case 3: // remove a random VM
				if len(placed) == 0 {
					continue
				}
				i := rng.Intn(len(placed))
				if err := dc.Remove(placed[i]); err != nil {
					t.Fatalf("seed %d op %d: remove: %v", seed, op, err)
				}
				placed = append(placed[:i], placed[i+1:]...)
			case 4: // sleep idle servers
				dc.SleepIdle()
			case 5: // wake a random server and adjust its frequency
				s := servers[rng.Intn(len(servers))]
				if s.State() == Sleeping {
					s.Wake()
				}
				ps := s.Spec.PStates
				s.SetFreq(ps[rng.Intn(len(ps))])
			}
			if err := dc.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
		// Final audit: every placed VM is findable and hosted exactly once.
		for _, v := range placed {
			host := dc.HostOf(v.ID)
			if host == nil {
				t.Fatalf("seed %d: VM %s lost", seed, v.ID)
			}
			count := 0
			for _, hosted := range host.VMs() {
				if hosted == v {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("seed %d: VM %s hosted %d times", seed, v.ID, count)
			}
		}
		if got := len(dc.VMs()); got != len(placed) {
			t.Fatalf("seed %d: dc has %d VMs, expected %d", seed, got, len(placed))
		}
	}
}

// TotalPower must always equal the sum over servers, whatever the state.
func TestTotalPowerConsistencyUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dc := testDC(t, 4)
	for op := 0; op < 100; op++ {
		s := dc.Servers[rng.Intn(4)]
		if s.State() == Active && s.NumVMs() == 0 && rng.Intn(2) == 0 {
			s.Sleep()
		} else if s.State() == Sleeping {
			s.Wake()
		}
		sum := 0.0
		for _, srv := range dc.Servers {
			sum += srv.Power()
		}
		if got := dc.TotalPower(); got != sum {
			t.Fatalf("op %d: TotalPower %v != sum %v", op, got, sum)
		}
	}
}
