package cluster

import (
	"errors"
	"math"
)

// MigrationModel estimates the duration and downtime of a pre-copy live
// migration (Clark et al., NSDI'05 — reference [3] of the paper): the
// VM's memory is copied over the migration network in iterative passes,
// each pass re-copying the pages dirtied during the previous one, until
// the residual set is small enough to stop-and-copy.
//
// The paper motivates its two time scales with exactly this cost: "a VM
// migration typically requires seconds, or even minutes, to finish".
type MigrationModel struct {
	// BandwidthGbps is the migration link bandwidth in gigabits/s.
	BandwidthGbps float64
	// DirtyFraction is the fraction of memory re-dirtied during one full
	// copy pass (0 ≤ d < 1).
	DirtyFraction float64
	// Passes is the number of iterative pre-copy passes before
	// stop-and-copy.
	Passes int
	// StopOverheadMS is the fixed suspend/resume overhead in ms added to
	// the final copy.
	StopOverheadMS float64
}

// DefaultMigrationModel models a dedicated 1 Gbps migration network with
// moderately write-active VMs.
func DefaultMigrationModel() MigrationModel {
	return MigrationModel{
		BandwidthGbps:  1.0,
		DirtyFraction:  0.15,
		Passes:         4,
		StopOverheadMS: 30,
	}
}

// Validate checks the model parameters.
func (m MigrationModel) Validate() error {
	if m.BandwidthGbps <= 0 {
		return errors.New("cluster: migration bandwidth must be positive")
	}
	if m.DirtyFraction < 0 || m.DirtyFraction >= 1 {
		return errors.New("cluster: dirty fraction must be in [0,1)")
	}
	if m.Passes < 1 {
		return errors.New("cluster: need at least one copy pass")
	}
	if m.StopOverheadMS < 0 {
		return errors.New("cluster: negative stop overhead")
	}
	return nil
}

// gbPerSecond converts the link rate to gigabytes per second.
func (m MigrationModel) gbPerSecond() float64 { return m.BandwidthGbps / 8 }

// Duration returns the total wall-clock time in seconds to migrate a VM
// with the given memory footprint: the geometric series of pre-copy
// passes plus the stop-and-copy.
func (m MigrationModel) Duration(memGB float64) float64 {
	if memGB <= 0 {
		return m.StopOverheadMS / 1000
	}
	rate := m.gbPerSecond()
	d := m.DirtyFraction
	// Σ_{i=0..P-1} M·d^i / rate + downtime
	total := memGB * (1 - math.Pow(d, float64(m.Passes))) / (1 - d) / rate
	return total + m.Downtime(memGB)
}

// Downtime returns the stop-and-copy service interruption in seconds:
// the residual dirty memory after the pre-copy passes, plus the fixed
// suspend/resume overhead.
func (m MigrationModel) Downtime(memGB float64) float64 {
	if memGB < 0 {
		memGB = 0
	}
	residual := memGB * math.Pow(m.DirtyFraction, float64(m.Passes))
	return residual/m.gbPerSecond() + m.StopOverheadMS/1000
}

// NetworkGB returns the total data moved over the migration network in
// gigabytes — what a bandwidth-priced cost policy should charge for.
func (m MigrationModel) NetworkGB(memGB float64) float64 {
	if memGB <= 0 {
		return 0
	}
	d := m.DirtyFraction
	return memGB * (1 - math.Pow(d, float64(m.Passes+1))) / (1 - d)
}
