package cluster

import (
	"bytes"
	"strings"
	"testing"

	"vdcpower/internal/power"
)

func snapshotDC(t *testing.T) *DataCenter {
	t.Helper()
	dc := testDC(t, 3)
	if err := dc.Place(newVM("v1", 1.5, 2), dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(newVM("v2", 0.5, 1), dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	dc.Servers[0].SetFreq(1.2)
	dc.Servers[2].Sleep()
	return dc
}

func TestSnapshotRoundTrip(t *testing.T) {
	dc := snapshotDC(t)
	var buf bytes.Buffer
	if err := dc.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Servers) != 3 {
		t.Fatalf("servers = %d", len(back.Servers))
	}
	if back.Servers[0].Freq() != 1.2 {
		t.Fatalf("freq = %v", back.Servers[0].Freq())
	}
	if back.Servers[2].State() != Sleeping {
		t.Fatal("sleep state lost")
	}
	if back.HostOf("v1") != back.Servers[0] || back.HostOf("v2") != back.Servers[0] {
		t.Fatal("VM placement lost")
	}
	if got := back.Servers[0].TotalDemand(); got != 2.0 {
		t.Fatalf("demand = %v", got)
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	dc := snapshotDC(t)
	snap := dc.Snapshot()
	// Mutating the snapshot must not touch the live data center.
	snap.Servers[0].VMs[0].Demand = 99
	if dc.Servers[0].VMs()[0].Demand == 99 {
		t.Fatal("snapshot aliases live VM state")
	}
	// And restoring yields independent VMs.
	back, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	back.Servers[0].VMs()[0].Demand = 7
	if dc.Servers[0].VMs()[0].Demand == 7 {
		t.Fatal("restored DC aliases live VM state")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	base := snapshotDC(t).Snapshot()

	badSpec := snapshotDC(t).Snapshot()
	badSpec.Servers[0].Spec.Cores = 0
	if _, err := Restore(badSpec); err == nil {
		t.Fatal("bad spec accepted")
	}

	sleepWithVMs := snapshotDC(t).Snapshot()
	sleepWithVMs.Servers[0].Sleeping = true
	if _, err := Restore(sleepWithVMs); err == nil {
		t.Fatal("sleeping server with VMs accepted")
	}

	dupVM := snapshotDC(t).Snapshot()
	dupVM.Servers[1].VMs = append(dupVM.Servers[1].VMs, dupVM.Servers[0].VMs[0])
	if _, err := Restore(dupVM); err == nil {
		t.Fatal("duplicate VM accepted")
	}

	dupServer := snapshotDC(t).Snapshot()
	dupServer.Servers[1].ID = dupServer.Servers[0].ID
	if _, err := Restore(dupServer); err == nil {
		t.Fatal("duplicate server accepted")
	}

	badVM := base
	badVM.Servers[0].VMs[0].Demand = -1
	if _, err := Restore(badVM); err == nil {
		t.Fatal("negative demand accepted")
	}
}

// TestSnapshotMidMigration checkpoints while a two-phase migration is in
// flight. Reservations are deliberately not serialized — the VM is hosted
// on its source until commit, so the snapshot records the only durable
// truth — and restoring must land in a consistent placement: VM on the
// source, no in-flight entries, the reservation-woken target captured in
// whatever power state it reached.
func TestSnapshotMidMigration(t *testing.T) {
	dc := snapshotDC(t)
	v1 := dc.Servers[0].VMs()[0]
	tx, err := dc.BeginMigration(v1, dc.Servers[2]) // sleeping: reservation wakes it
	if err != nil {
		t.Fatal(err)
	}
	back, err := Restore(dc.Snapshot())
	if err != nil {
		t.Fatalf("restoring mid-migration: %v", err)
	}
	if host := back.HostOf(v1.ID); host == nil || host.ID != dc.Servers[0].ID {
		t.Fatalf("in-flight VM restored on %v, want source %s", host, dc.Servers[0].ID)
	}
	if n := len(back.InFlight()); n != 0 {
		t.Fatalf("restored DC carries %d in-flight reservation(s)", n)
	}
	if back.Servers[2].State() != Active {
		t.Fatalf("reservation-woken target restored %s, want Active", back.Servers[2].State())
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The restored copy is fully operational: the same move can be redone
	// from scratch and committed.
	restoredVM := back.Servers[0].VMs()[0]
	tx2, err := back.BeginMigration(restoredVM, back.Servers[2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if back.HostOf(restoredVM.ID) != back.Servers[2] {
		t.Fatal("redone migration did not land on the target")
	}
	// And the original transaction is untouched by the checkpoint: it can
	// still roll back cleanly.
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if dc.HostOf(v1.ID) != dc.Servers[0] {
		t.Fatal("rollback after checkpoint lost the source placement")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSnapshotOfEmptyDC(t *testing.T) {
	dc, err := NewDataCenter([]*Server{NewServer("s", power.TypeMid())})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Restore(dc.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Servers) != 1 || back.Servers[0].NumVMs() != 0 {
		t.Fatal("empty DC round trip failed")
	}
}
