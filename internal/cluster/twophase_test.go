package cluster

import (
	"bytes"
	"testing"
)

func TestBeginCommitEquivalentToMigrate(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1.0, 2)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	tx, err := dc.BeginMigration(v, dc.Servers[1])
	if err != nil {
		t.Fatal(err)
	}
	if tx.Phase() != TxReserved || tx.Source() != dc.Servers[0] || tx.Target() != dc.Servers[1] || tx.VM() != v {
		t.Fatalf("reservation shape: %+v", tx)
	}
	// Mid-flight: the VM is still hosted exactly once, on the source.
	if dc.HostOf("v1") != dc.Servers[0] || dc.Servers[1].NumVMs() != 0 {
		t.Fatal("reservation moved the VM early")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != dc.Servers[0] || m.To != dc.Servers[1] || dc.HostOf("v1") != dc.Servers[1] {
		t.Fatalf("commit did not move the VM: %+v", m)
	}
	if tx.Phase() != TxCommitted || len(dc.InFlight()) != 0 {
		t.Fatal("transaction not retired")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Double-commit and rollback-after-commit are rejected.
	if _, err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	if err := tx.Rollback(); err == nil {
		t.Fatal("rollback after commit accepted")
	}
}

func TestRollbackRestoresPlacementAndSleep(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1.0, 2)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	dc.Servers[1].Sleep()
	tx, err := dc.BeginMigration(v, dc.Servers[1])
	if err != nil {
		t.Fatal(err)
	}
	if dc.Servers[1].State() != Active {
		t.Fatal("reservation did not wake the target")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if dc.HostOf("v1") != dc.Servers[0] {
		t.Fatal("rollback moved the VM")
	}
	if dc.Servers[1].State() != Sleeping {
		t.Fatal("rollback did not re-sleep the target it woke")
	}
	if tx.Phase() != TxRolledBack || len(dc.InFlight()) != 0 {
		t.Fatal("transaction not retired")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err == nil {
		t.Fatal("double rollback accepted")
	}
}

func TestRollbackKeepsTargetClaimedByOthers(t *testing.T) {
	dc := testDC(t, 3)
	a, b := newVM("a", 1.0, 2), newVM("b", 1.0, 2)
	if err := dc.Place(a, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(b, dc.Servers[1]); err != nil {
		t.Fatal(err)
	}
	dc.Servers[2].Sleep()
	txA, err := dc.BeginMigration(a, dc.Servers[2])
	if err != nil {
		t.Fatal(err)
	}
	txB, err := dc.BeginMigration(b, dc.Servers[2])
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dc.InFlight()); got != 2 {
		t.Fatalf("in-flight = %d", got)
	}
	// A's rollback must not re-sleep the target B still has reserved.
	if err := txA.Rollback(); err != nil {
		t.Fatal(err)
	}
	if dc.Servers[2].State() != Active {
		t.Fatal("rollback slept a server another migration reserved")
	}
	if _, err := txB.Commit(); err != nil {
		t.Fatal(err)
	}
	if dc.HostOf("b") != dc.Servers[2] {
		t.Fatal("surviving migration lost")
	}
}

func TestBeginMigrationRejections(t *testing.T) {
	dc := testDC(t, 3)
	v := newVM("v1", 1.0, 2)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.BeginMigration(newVM("ghost", 1, 1), dc.Servers[1]); err == nil {
		t.Fatal("unplaced VM accepted")
	}
	if _, err := dc.BeginMigration(v, dc.Servers[0]); err == nil {
		t.Fatal("self-migration accepted")
	}
	dc.Servers[1].Cordon()
	if _, err := dc.BeginMigration(v, dc.Servers[1]); err == nil {
		t.Fatal("cordoned target accepted")
	}
	dc.Crash(dc.Servers[2])
	if _, err := dc.BeginMigration(v, dc.Servers[2]); err == nil {
		t.Fatal("failed target accepted")
	}
	dc.Servers[1].Uncordon()
	if _, err := dc.BeginMigration(v, dc.Servers[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.BeginMigration(v, dc.Servers[1]); err == nil {
		t.Fatal("double reservation accepted")
	}
}

func TestMigrationObserverSeesAllPhases(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1.0, 2)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	var phases []TxPhase
	dc.SetMigrationObserver(func(tx *MigrationTx) { phases = append(phases, tx.Phase()) })
	tx, err := dc.BeginMigration(v, dc.Servers[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Migrate(v, dc.Servers[1]); err != nil {
		t.Fatal(err)
	}
	want := []TxPhase{TxReserved, TxRolledBack, TxReserved, TxCommitted}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
}

func TestCrashDetachesVMsAndCancelsInFlight(t *testing.T) {
	dc := testDC(t, 3)
	a, b := newVM("a", 1.0, 2), newVM("b", 1.0, 2)
	if err := dc.Place(a, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(b, dc.Servers[1]); err != nil {
		t.Fatal(err)
	}
	// a is migrating out of the server about to crash; b is migrating into it.
	txA, err := dc.BeginMigration(a, dc.Servers[2])
	if err != nil {
		t.Fatal(err)
	}
	txB, err := dc.BeginMigration(b, dc.Servers[0])
	if err != nil {
		t.Fatal(err)
	}
	orphans := dc.Crash(dc.Servers[0])
	if len(orphans) != 1 || orphans[0] != a {
		t.Fatalf("orphans = %v", orphans)
	}
	if dc.Servers[0].State() != Failed || dc.Servers[0].Power() != 0 {
		t.Fatal("crashed server not failed/powered off")
	}
	if dc.HostOf("a") != nil {
		t.Fatal("orphan still indexed")
	}
	if dc.HostOf("b") != dc.Servers[1] {
		t.Fatal("inbound migration's VM moved")
	}
	if len(dc.InFlight()) != 0 || txA.Phase() != TxRolledBack || txB.Phase() != TxRolledBack {
		t.Fatal("crash did not cancel in-flight migrations")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Crash is idempotent; a failed server cannot be placed on or woken.
	if dc.Crash(dc.Servers[0]) != nil {
		t.Fatal("second crash returned orphans")
	}
	if err := dc.Place(newVM("c", 1, 1), dc.Servers[0]); err == nil {
		t.Fatal("placement on failed server accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("waking a failed server did not panic")
			}
		}()
		dc.Servers[0].Wake()
	}()
}

func TestCommitFailsWhenTargetCrashes(t *testing.T) {
	dc := testDC(t, 3)
	v := newVM("v1", 1.0, 2)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	tx, err := dc.BeginMigration(v, dc.Servers[1])
	if err != nil {
		t.Fatal(err)
	}
	// Crash cancels the tx; a late Commit must fail, not double-place.
	dc.Crash(dc.Servers[1])
	if _, err := tx.Commit(); err == nil {
		t.Fatal("commit onto crashed target accepted")
	}
	if dc.HostOf("v1") != dc.Servers[0] {
		t.Fatal("VM lost")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWithMigrationInFlight(t *testing.T) {
	// Restoring a snapshot taken mid-two-phase must land in a consistent
	// placement: the VM is on its source (reservations are not serialized;
	// the restored run simply re-plans).
	dc := testDC(t, 2)
	v := newVM("v1", 1.0, 2)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	dc.Servers[1].Sleep()
	tx, err := dc.BeginMigration(v, dc.Servers[1])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dc.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.HostOf("v1") != back.Servers[0] {
		t.Fatal("mid-flight VM not restored onto its source")
	}
	if back.Servers[1].State() != Active {
		t.Fatal("woken reservation target restored asleep")
	}
	if len(back.InFlight()) != 0 {
		t.Fatal("restored DC has phantom reservations")
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The original transaction still commits normally after the snapshot.
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFailedServerRoundTrip(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1.0, 2)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	dc.Crash(dc.Servers[1])
	var buf bytes.Buffer
	if err := dc.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.Servers[1].State() != Failed {
		t.Fatal("failed state lost in round trip")
	}
	// A snapshot claiming a failed server hosts VMs is corrupt.
	bad := dc.Snapshot()
	bad.Servers[1].VMs = []VM{{ID: "zombie", Demand: 1, MemoryGB: 1}}
	if _, err := Restore(bad); err == nil {
		t.Fatal("failed server with VMs restored")
	}
	bad = dc.Snapshot()
	bad.Servers[1].Sleeping = true
	if _, err := Restore(bad); err == nil {
		t.Fatal("sleeping+failed server restored")
	}
}
