package cluster

import (
	"testing"
)

func TestCordonRejectsPlacement(t *testing.T) {
	dc := testDC(t, 2)
	dc.Servers[0].Cordon()
	if !dc.Servers[0].Cordoned() {
		t.Fatal("Cordoned() = false")
	}
	if err := dc.Place(newVM("v1", 1, 1), dc.Servers[0]); err == nil {
		t.Fatal("placement onto cordoned server accepted")
	}
	if err := dc.Place(newVM("v1", 1, 1), dc.Servers[1]); err != nil {
		t.Fatal(err)
	}
}

func TestCordonRejectsMigrationTarget(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1, 1)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	dc.Servers[1].Cordon()
	if _, err := dc.Migrate(v, dc.Servers[1]); err == nil {
		t.Fatal("migration onto cordoned server accepted")
	}
	// Migrating AWAY from a cordoned server must work (that's the point).
	dc.Servers[0].Cordon()
	dc.Servers[1].Uncordon()
	if _, err := dc.Migrate(v, dc.Servers[1]); err != nil {
		t.Fatal(err)
	}
}

func TestCordonSurvivesSnapshot(t *testing.T) {
	dc := testDC(t, 2)
	dc.Servers[1].Cordon()
	back, err := Restore(dc.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if back.Servers[1].Cordoned() != true || back.Servers[0].Cordoned() != false {
		t.Fatal("cordon state lost in snapshot round trip")
	}
}

func TestCordonedServerKeepsServing(t *testing.T) {
	dc := testDC(t, 1)
	v := newVM("v1", 2, 1)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	dc.Servers[0].Cordon()
	// Existing VM stays hosted; power and DVFS still work.
	if dc.Servers[0].NumVMs() != 1 {
		t.Fatal("cordon evicted a VM")
	}
	if f := dc.Servers[0].ApplyDVFS(); f <= 0 {
		t.Fatalf("DVFS broken on cordoned server: %v", f)
	}
}
