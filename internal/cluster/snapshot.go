package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"vdcpower/internal/power"
)

// Snapshot is a serializable image of a data center: server specs,
// power states, frequencies and hosted VMs. Long-running simulations
// checkpoint through it, and operators can dump live state for
// inspection.
type Snapshot struct {
	Servers []ServerSnapshot `json:"servers"`
}

// ServerSnapshot captures one server.
type ServerSnapshot struct {
	ID       string     `json:"id"`
	Spec     power.Spec `json:"spec"`
	Sleeping bool       `json:"sleeping"`
	Failed   bool       `json:"failed,omitempty"`
	Cordoned bool       `json:"cordoned,omitempty"`
	FreqGHz  float64    `json:"freq_ghz"`
	VMs      []VM       `json:"vms"`
}

// Snapshot captures the current state of the data center.
func (dc *DataCenter) Snapshot() Snapshot {
	s := Snapshot{}
	for _, srv := range dc.Servers {
		ss := ServerSnapshot{
			ID:       srv.ID,
			Spec:     srv.Spec,
			Sleeping: srv.state == Sleeping,
			Failed:   srv.state == Failed,
			Cordoned: srv.cordoned,
			FreqGHz:  srv.freq,
		}
		for _, v := range srv.vms {
			ss.VMs = append(ss.VMs, *v)
		}
		s.Servers = append(s.Servers, ss)
	}
	return s
}

// Restore reconstructs a data center from a snapshot, validating specs,
// VM parameters, uniqueness and state invariants.
func Restore(s Snapshot) (*DataCenter, error) {
	var servers []*Server
	for _, ss := range s.Servers {
		if err := ss.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: restoring %s: %w", ss.ID, err)
		}
		srv := NewServer(ss.ID, ss.Spec)
		srv.SetFreq(ss.FreqGHz)
		for i := range ss.VMs {
			vm := ss.VMs[i]
			if err := vm.Validate(); err != nil {
				return nil, fmt.Errorf("cluster: restoring %s: %w", ss.ID, err)
			}
			srv.host(&vm)
		}
		if ss.Sleeping && ss.Failed {
			return nil, fmt.Errorf("cluster: snapshot has server %s both sleeping and failed", ss.ID)
		}
		if ss.Sleeping {
			if srv.NumVMs() > 0 {
				return nil, fmt.Errorf("cluster: snapshot has sleeping server %s with VMs", ss.ID)
			}
			srv.Sleep()
		}
		if ss.Failed {
			if srv.NumVMs() > 0 {
				return nil, fmt.Errorf("cluster: snapshot has failed server %s with VMs", ss.ID)
			}
			srv.state = Failed
		}
		if ss.Cordoned {
			srv.Cordon()
		}
		servers = append(servers, srv)
	}
	dc, err := NewDataCenter(servers)
	if err != nil {
		return nil, err
	}
	// Reject duplicate VM IDs across servers.
	if err := dc.CheckInvariants(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, srv := range dc.Servers {
		for _, v := range srv.vms {
			if seen[v.ID] {
				return nil, fmt.Errorf("cluster: snapshot has duplicate VM %s", v.ID)
			}
			seen[v.ID] = true
		}
	}
	return dc, nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("cluster: decoding snapshot: %w", err)
	}
	return s, nil
}
