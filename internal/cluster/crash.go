package cluster

// Crash fails a server: its hosted VMs are detached and returned as
// orphans (the harness decides their fate — evacuate or lose, per the
// fault profile's crash policy), any in-flight migration touching the
// server is cancelled, and the server draws no power and accepts no
// placements for the rest of the run. Crashing an already-failed server
// is a no-op returning nil.
func (dc *DataCenter) Crash(srv *Server) []*VM {
	if srv.state == Failed {
		return nil
	}
	// Cancel in-flight migrations from or to the crashed server. A tx
	// sourced here loses its VM with the server (the orphan list carries
	// it); a tx targeting here simply never commits — the VM is untouched
	// on its source.
	for _, tx := range dc.InFlight() {
		if tx.src == srv || tx.dst == srv {
			delete(dc.inflight, tx.vm.ID)
			tx.phase = TxRolledBack
			dc.observe(tx)
		}
	}
	orphans := append([]*VM(nil), srv.vms...)
	for _, v := range orphans {
		delete(dc.index, v.ID)
	}
	srv.vms = nil
	srv.state = Failed
	dc.trace.Event("cluster.crash").Str("server", srv.ID).Int("orphans", len(orphans)).End()
	return orphans
}
