package cluster

import (
	"fmt"
	"math"
	"testing"

	"vdcpower/internal/power"
)

func newVM(id string, demand, mem float64) *VM {
	return &VM{ID: id, Demand: demand, MemoryGB: mem}
}

func testDC(t *testing.T, n int) *DataCenter {
	t.Helper()
	var servers []*Server
	for i := 0; i < n; i++ {
		servers = append(servers, NewServer(fmt.Sprintf("s%d", i), power.TypeMid()))
	}
	dc, err := NewDataCenter(servers)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func TestVMValidate(t *testing.T) {
	if err := newVM("a", 1, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&VM{}).Validate(); err == nil {
		t.Fatal("empty ID must fail")
	}
	if err := newVM("a", -1, 1).Validate(); err == nil {
		t.Fatal("negative demand must fail")
	}
}

func TestServerLifecycle(t *testing.T) {
	s := NewServer("s1", power.TypeHighEnd())
	if s.State() != Active {
		t.Fatal("new server must be active")
	}
	if s.Freq() != 3.0 {
		t.Fatalf("Freq = %v", s.Freq())
	}
	s.Sleep()
	if s.State() != Sleeping {
		t.Fatal("Sleep failed")
	}
	if s.Power() != s.Spec.PSleep {
		t.Fatalf("sleeping power = %v", s.Power())
	}
	s.Wake()
	if s.State() != Active || s.Freq() != 3.0 {
		t.Fatal("Wake failed")
	}
	if s.State().String() == "" || Sleeping.String() == "" {
		t.Fatal("State String empty")
	}
}

func TestSleepWithVMsPanics(t *testing.T) {
	dc := testDC(t, 1)
	if err := dc.Place(newVM("v1", 1, 1), dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dc.Servers[0].Sleep()
}

func TestSetFreqValidPState(t *testing.T) {
	s := NewServer("s1", power.TypeMid())
	s.SetFreq(1.2)
	if s.Freq() != 1.2 {
		t.Fatalf("Freq = %v", s.Freq())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-P-state")
		}
	}()
	s.SetFreq(1.23)
}

func TestApplyDVFSSelectsLowestSufficient(t *testing.T) {
	dc := testDC(t, 1) // TypeMid: 2 cores, P-states .8 1.2 1.6 2.0
	s := dc.Servers[0]
	if err := dc.Place(newVM("v1", 1.5, 1), s); err != nil {
		t.Fatal(err)
	}
	if f := s.ApplyDVFS(); f != 0.8 { // 2*0.8 = 1.6 >= 1.5
		t.Fatalf("DVFS chose %v, want 0.8", f)
	}
	if err := dc.Place(newVM("v2", 1.8, 1), s); err != nil {
		t.Fatal(err)
	}
	// Demand 3.3 GHz: 2×1.6 = 3.2 is short, so 2.0 is required.
	if f := s.ApplyDVFS(); f != 2.0 {
		t.Fatalf("DVFS chose %v, want 2.0", f)
	}
}

func TestDemandMemorySlackUtilization(t *testing.T) {
	dc := testDC(t, 1)
	s := dc.Servers[0]
	if err := dc.Place(newVM("v1", 1.0, 2), s); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(newVM("v2", 0.5, 3), s); err != nil {
		t.Fatal(err)
	}
	if s.TotalDemand() != 1.5 || s.TotalMemory() != 5 {
		t.Fatalf("demand=%v mem=%v", s.TotalDemand(), s.TotalMemory())
	}
	if got := s.Slack(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Slack = %v, want 2.5", got)
	}
	s.SetFreq(2.0)
	if got := s.Utilization(); math.Abs(got-1.5/4) > 1e-12 {
		t.Fatalf("Utilization = %v", got)
	}
	if s.Overloaded() {
		t.Fatal("not overloaded")
	}
	if err := dc.Place(newVM("v3", 5, 0), s); err != nil {
		t.Fatal(err)
	}
	if !s.Overloaded() {
		t.Fatal("should be overloaded at 6.5 > 4")
	}
	if s.Utilization() != 1 {
		t.Fatal("utilization must clamp at 1")
	}
}

func TestPlaceDuplicateFails(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1, 1)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(v, dc.Servers[1]); err == nil {
		t.Fatal("duplicate placement must fail")
	}
}

func TestPlaceWakesSleepingServer(t *testing.T) {
	dc := testDC(t, 1)
	dc.Servers[0].Sleep()
	if err := dc.Place(newVM("v1", 1, 1), dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if dc.Servers[0].State() != Active {
		t.Fatal("Place must wake the server")
	}
}

func TestMigrate(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1, 1)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	mig, err := dc.Migrate(v, dc.Servers[1])
	if err != nil {
		t.Fatal(err)
	}
	if mig.From != dc.Servers[0] || mig.To != dc.Servers[1] || mig.VM != v {
		t.Fatalf("bad migration record %+v", mig)
	}
	if dc.HostOf("v1") != dc.Servers[1] {
		t.Fatal("index not updated")
	}
	if dc.Servers[0].NumVMs() != 0 || dc.Servers[1].NumVMs() != 1 {
		t.Fatal("VM lists not updated")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateErrors(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1, 1)
	if _, err := dc.Migrate(v, dc.Servers[0]); err == nil {
		t.Fatal("unplaced VM must fail")
	}
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Migrate(v, dc.Servers[0]); err == nil {
		t.Fatal("self-migration must fail")
	}
}

func TestMigrateWakesTarget(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1, 1)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	dc.Servers[1].Sleep()
	if _, err := dc.Migrate(v, dc.Servers[1]); err != nil {
		t.Fatal(err)
	}
	if dc.Servers[1].State() != Active {
		t.Fatal("target not woken")
	}
}

func TestRemove(t *testing.T) {
	dc := testDC(t, 1)
	v := newVM("v1", 1, 1)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := dc.Remove(v); err != nil {
		t.Fatal(err)
	}
	if dc.HostOf("v1") != nil || dc.Servers[0].NumVMs() != 0 {
		t.Fatal("Remove incomplete")
	}
	if err := dc.Remove(v); err == nil {
		t.Fatal("double remove must fail")
	}
}

func TestVMsSortedAndComplete(t *testing.T) {
	dc := testDC(t, 2)
	for _, id := range []string{"vc", "va", "vb"} {
		if err := dc.Place(newVM(id, 0.1, 0.1), dc.Servers[0]); err != nil {
			t.Fatal(err)
		}
	}
	vms := dc.VMs()
	if len(vms) != 3 || vms[0].ID != "va" || vms[2].ID != "vc" {
		t.Fatalf("VMs = %v", vms)
	}
}

func TestSleepIdleAndCounts(t *testing.T) {
	dc := testDC(t, 3)
	if err := dc.Place(newVM("v1", 1, 1), dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	n := dc.SleepIdle()
	if n != 2 {
		t.Fatalf("SleepIdle = %d, want 2", n)
	}
	if dc.NumActive() != 1 {
		t.Fatalf("NumActive = %d", dc.NumActive())
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTotalPowerSums(t *testing.T) {
	dc := testDC(t, 2)
	dc.Servers[1].Sleep()
	want := dc.Servers[0].Power() + dc.Servers[1].Spec.PSleep
	if got := dc.TotalPower(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalPower = %v, want %v", got, want)
	}
}

func TestNewDataCenterDuplicateID(t *testing.T) {
	s1 := NewServer("dup", power.TypeMid())
	s2 := NewServer("dup", power.TypeMid())
	if _, err := NewDataCenter([]*Server{s1, s2}); err == nil {
		t.Fatal("duplicate IDs must fail")
	}
}

func TestCPUConstraint(t *testing.T) {
	dc := testDC(t, 1) // capacity 4 GHz
	s := dc.Servers[0]
	c := CPUConstraint{}
	if !c.Admits(s, []*VM{newVM("a", 4, 0)}) {
		t.Fatal("exact fit should be admitted")
	}
	if c.Admits(s, []*VM{newVM("a", 4.1, 0)}) {
		t.Fatal("overflow should be rejected")
	}
	h := CPUConstraint{Headroom: 0.25}
	if h.Admits(s, []*VM{newVM("a", 3.5, 0)}) {
		t.Fatal("headroom should cap at 3 GHz")
	}
	if c.Name() == "" {
		t.Fatal("Name empty")
	}
}

func TestMemoryConstraint(t *testing.T) {
	dc := testDC(t, 1) // TypeMid: 8 GB
	s := dc.Servers[0]
	m := MemoryConstraint{}
	if !m.Admits(s, []*VM{newVM("a", 0, 8)}) {
		t.Fatal("exact memory fit should be admitted")
	}
	if m.Admits(s, []*VM{newVM("a", 0, 8.5)}) {
		t.Fatal("memory overflow should be rejected")
	}
	if m.Name() == "" {
		t.Fatal("Name empty")
	}
}

func TestAndConstraint(t *testing.T) {
	dc := testDC(t, 1)
	s := dc.Servers[0]
	both := And{CPUConstraint{}, MemoryConstraint{}}
	if !both.Admits(s, []*VM{newVM("a", 1, 1)}) {
		t.Fatal("feasible placement rejected")
	}
	if both.Admits(s, []*VM{newVM("a", 99, 1)}) {
		t.Fatal("CPU violation admitted")
	}
	if both.Admits(s, []*VM{newVM("a", 1, 99)}) {
		t.Fatal("memory violation admitted")
	}
	if both.Name() != "and(cpu,memory)" {
		t.Fatalf("Name = %q", both.Name())
	}
}

func TestConstraintCountsExistingVMs(t *testing.T) {
	dc := testDC(t, 1)
	s := dc.Servers[0]
	if err := dc.Place(newVM("v1", 3, 6), s); err != nil {
		t.Fatal(err)
	}
	if (CPUConstraint{}).Admits(s, []*VM{newVM("a", 2, 0)}) {
		t.Fatal("existing demand ignored")
	}
	if (MemoryConstraint{}).Admits(s, []*VM{newVM("a", 0, 3)}) {
		t.Fatal("existing memory ignored")
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	dc := testDC(t, 2)
	v := newVM("v1", 1, 1)
	if err := dc.Place(v, dc.Servers[0]); err != nil {
		t.Fatal(err)
	}
	// Corrupt: move the VM behind the index's back.
	dc.Servers[0].unhost(v)
	dc.Servers[1].host(v)
	if err := dc.CheckInvariants(); err == nil {
		t.Fatal("corruption not detected")
	}
}
