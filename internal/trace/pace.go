package trace

// pace.go is the package's registered wall-clock edge (vdclint:
// wallClockEdges), mirroring internal/bench's sampler.go: replaying a
// trace against real time is the one job that must read the clock, so
// exactly this file holds the reads and sleeps. Nothing here can
// change WHAT a replay emits — only when — so determinism is
// structural: same-seed replays are byte-identical whether paced at
// 1x, 1000x, or not at all.

import "time"

// Pacer throttles a replay to real time scaled by a speedup factor: a
// record at sim time t is released no earlier than wall time
// start + t/speedup. A nil *Pacer never waits (the mode every test and
// simulator uses).
type Pacer struct {
	speedup float64
	started bool
	wall0   time.Time
	sim0    float64
}

// NewPacer builds a pacer; speedup 60 replays one simulated hour per
// wall minute. Nonpositive speedups are rejected by ReplaySpec
// validation; NewPacer treats them as 1.
func NewPacer(speedup float64) *Pacer {
	if speedup <= 0 {
		speedup = 1
	}
	return &Pacer{speedup: speedup}
}

// Wait blocks until the wall clock catches up with simTime/speedup.
// The first call anchors the epoch. Records whose release time already
// passed (a grid flush emitting a batch) do not wait.
func (p *Pacer) Wait(simTime float64) {
	if p == nil {
		return
	}
	if !p.started {
		p.started = true
		p.wall0 = time.Now()
		p.sim0 = simTime
		return
	}
	due := p.wall0.Add(time.Duration((simTime - p.sim0) / p.speedup * float64(time.Second)))
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
}
