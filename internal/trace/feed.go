package trace

import (
	"fmt"
	"io"
	"math"
)

// FeedConfig parameterizes turning a gridded record stream into
// per-application concurrency levels for the live control loop.
type FeedConfig struct {
	// StepSeconds is the stream's grid interval (default 900).
	StepSeconds float64
	// Apps is the number of applications fed (required).
	Apps int
	// Seed salts the deterministic VM→application assignment.
	Seed int64
	// MaxConcurrency is the client count an application sees when its
	// VMs run at full utilization (default 80 — twice the paper's
	// 40-client baseline, so a replayed surge visibly overloads).
	MaxConcurrency int
	// LagSteps is the watermark: step k is considered complete once a
	// record for step >= k+LagSteps arrives (or the stream ends).
	// Defaults to DefaultMaxGapSteps+1, the resampler's out-of-order
	// bound; it also bounds the feed's buffered state.
	LagSteps int
}

func (c FeedConfig) withDefaults() FeedConfig {
	if c.StepSeconds <= 0 {
		c.StepSeconds = DefaultStepSeconds
	}
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 80
	}
	if c.LagSteps <= 0 {
		c.LagSteps = DefaultMaxGapSteps + 1
	}
	return c
}

// stepAgg accumulates one grid step's per-app utilization.
type stepAgg struct {
	sum []float64
	n   []int
}

// Feed adapts a replayed record stream into the live serve loop: each
// call to Step returns the next grid step's per-application concurrency
// levels, aggregated from the VMs hashed onto each application. The
// feed is streaming — it buffers at most LagSteps step aggregates plus
// one record — and deterministic: the same stream and seed produce the
// same level sequence regardless of read timing.
type Feed struct {
	src     Source
	cfg     FeedConfig
	pending map[int]*stepAgg
	next    int  // next step index to emit
	started bool // next is anchored to the first record seen
	high    int  // highest step index seen
	done    bool
	err     error
	stale   int // records below the watermark, dropped
}

// NewFeed wraps src (typically a Stream over a gridded source).
func NewFeed(src Source, cfg FeedConfig) (*Feed, error) {
	cfg = cfg.withDefaults()
	if cfg.Apps <= 0 {
		return nil, fmt.Errorf("trace: feed needs Apps > 0")
	}
	return &Feed{src: src, cfg: cfg, pending: map[int]*stepAgg{}}, nil
}

// Err returns the stream error that ended the feed, if any (io.EOF is
// a clean end and reported as nil).
func (f *Feed) Err() error { return f.err }

// Stale returns how many records arrived below the emission watermark
// and were dropped (0 for any source honoring the grid contract).
func (f *Feed) Stale() int { return f.stale }

// app maps a VM onto an application index, deterministically.
func (f *Feed) app(vm string) int {
	return int(hashFold(f.cfg.Seed, "feed-app", vm, 0) % uint64(f.cfg.Apps))
}

// ingest folds one record into its step aggregate.
func (f *Feed) ingest(rec Record) {
	k := int(math.Round(rec.Time / f.cfg.StepSeconds))
	if !f.started {
		f.started = true
		f.next = k
		f.high = k
	}
	if k < f.next {
		f.stale++
		return
	}
	if k > f.high {
		f.high = k
	}
	agg, ok := f.pending[k]
	if !ok {
		agg = &stepAgg{sum: make([]float64, f.cfg.Apps), n: make([]int, f.cfg.Apps)}
		f.pending[k] = agg
	}
	a := f.app(rec.VM)
	agg.sum[a] += rec.Util
	agg.n[a]++
}

// Step returns the concurrency levels for the next grid step. A level
// of -1 means the step carried no data for that application (the caller
// holds its current setting). ok is false once the stream is exhausted
// or failed (see Err); levels is nil then.
func (f *Feed) Step() (levels []int, ok bool) {
	for !f.done && f.high < f.next+f.cfg.LagSteps {
		rec, err := f.src.Next()
		if err != nil {
			f.done = true
			if err != io.EOF {
				f.err = err
			}
			break
		}
		f.ingest(rec)
	}
	agg, have := f.pending[f.next]
	if !have {
		if f.done && len(f.pending) == 0 {
			return nil, false
		}
		// A wholly empty step inside the horizon: hold everything.
		f.next++
		out := make([]int, f.cfg.Apps)
		for i := range out {
			out[i] = -1
		}
		return out, true
	}
	delete(f.pending, f.next)
	f.next++
	out := make([]int, f.cfg.Apps)
	for a := 0; a < f.cfg.Apps; a++ {
		if agg.n[a] == 0 {
			out[a] = -1
			continue
		}
		mean := agg.sum[a] / float64(agg.n[a])
		out[a] = int(math.Round(mean * float64(f.cfg.MaxConcurrency)))
	}
	return out, true
}
