package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// AzureVM streams the Azure public dataset's vm_cpu_readings table
// (vm_cpu_readings-file-*-of-*.csv[.gz], one header row tolerated):
// timestamp in
// seconds since the collection epoch on a 5-minute grid, an opaque VM
// id, then min/max/avg CPU utilization in percent. The decoder keeps
// the average reading and normalizes percent to a fraction.
//
// Like the Google adapter it enforces globally nondecreasing
// timestamps and rejects malformed rows with a typed *RecordError;
// rows with an empty average — dropped readings exist in the real
// corpus — are skipped and counted.
type AzureVM struct {
	cr      *csv.Reader
	line    int
	lastT   float64
	skipped int
	done    bool
}

// NewAzureVM opens a vm_cpu_readings stream; gzip input is detected by
// magic bytes.
func NewAzureVM(r io.Reader) (*AzureVM, error) {
	br, err := openMaybeGzip(r)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(&lineBound{r: br})
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	return &AzureVM{cr: cr}, nil
}

// Skipped returns the number of rows dropped for an empty reading.
func (a *AzureVM) Skipped() int { return a.skipped }

// Next implements Source.
func (a *AzureVM) Next() (Record, error) {
	if a.done {
		return Record{}, io.EOF
	}
	for {
		row, err := a.cr.Read()
		if err == io.EOF {
			a.done = true
			return Record{}, io.EOF
		}
		if err != nil {
			return Record{}, fmt.Errorf("trace: azure-vm: %w", err)
		}
		a.line++
		if len(row) < azureVMCols {
			return Record{}, &RecordError{Format: "azure-vm", Line: a.line,
				Reason: fmt.Sprintf("%d columns, want at least %d", len(row), azureVMCols)}
		}
		if row[4] == "" {
			a.skipped++
			continue
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil && a.line == 1 {
			// Some exports carry a header row; tolerate exactly one.
			continue
		}
		if err != nil || t < 0 {
			return Record{}, &RecordError{Format: "azure-vm", Line: a.line,
				Reason: fmt.Sprintf("bad timestamp %q", row[0])}
		}
		if row[1] == "" {
			return Record{}, &RecordError{Format: "azure-vm", Line: a.line, Reason: "empty VM id"}
		}
		avgPct, err := strconv.ParseFloat(row[4], 64)
		if err != nil || !validUtil(avgPct) {
			return Record{}, &RecordError{Format: "azure-vm", Line: a.line,
				Reason: fmt.Sprintf("bad avg CPU %q", row[4])}
		}
		if t < a.lastT {
			return Record{}, &RecordError{Format: "azure-vm", Line: a.line,
				Reason: fmt.Sprintf("timestamp went backwards (%.0f s after %.0f s)", t, a.lastT)}
		}
		a.lastT = t
		// Concatenation with "" forces a copy out of the reused record.
		return Record{VM: "az-" + row[1], Time: t, Util: clamp01(avgPct / 100)}, nil
	}
}
