package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// GoogleUsage streams the Google cluster-trace task-usage table
// (ClusterData2011: part-*-of-*.csv[.gz], no header). The columns used
// are start time (µs), end time (µs), job ID, task index, and the mean
// CPU usage rate (a fraction of machine capacity); the remaining
// columns are ignored. One "VM" is one job/task pair — the unit the
// paper's consolidator places.
//
// The table is sorted by start time; the decoder enforces globally
// nondecreasing timestamps (the grid resampler depends on it) and
// rejects anything else with a typed *RecordError. Rows with an empty
// usage field — present in the real corpus where the monitor missed a
// window — are skipped and counted, not fatal.
type GoogleUsage struct {
	cr      *csv.Reader
	line    int
	lastT   float64
	skipped int
	done    bool
}

// Minimum column counts: the real tables carry 20 (usage) and 5
// (Azure readings) columns, but only the leading ones are schema-bearing;
// fabricated mini-corpora keep just these.
const (
	googleUsageCols = 6
	azureVMCols     = 5
)

// NewGoogleUsage opens a task-usage stream; gzip input is detected by
// magic bytes.
func NewGoogleUsage(r io.Reader) (*GoogleUsage, error) {
	br, err := openMaybeGzip(r)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(&lineBound{r: br})
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	return &GoogleUsage{cr: cr}, nil
}

// Skipped returns the number of rows dropped for an empty usage field.
func (g *GoogleUsage) Skipped() int { return g.skipped }

// Next implements Source.
func (g *GoogleUsage) Next() (Record, error) {
	if g.done {
		return Record{}, io.EOF
	}
	for {
		row, err := g.cr.Read()
		if err == io.EOF {
			g.done = true
			return Record{}, io.EOF
		}
		if err != nil {
			return Record{}, fmt.Errorf("trace: google-usage: %w", err)
		}
		g.line++
		if len(row) < googleUsageCols {
			return Record{}, &RecordError{Format: "google-usage", Line: g.line,
				Reason: fmt.Sprintf("%d columns, want at least %d", len(row), googleUsageCols)}
		}
		if row[5] == "" {
			g.skipped++
			continue
		}
		startUS, err := strconv.ParseFloat(row[0], 64)
		if err != nil || startUS < 0 {
			return Record{}, &RecordError{Format: "google-usage", Line: g.line,
				Reason: fmt.Sprintf("bad start time %q", row[0])}
		}
		endUS, err := strconv.ParseFloat(row[1], 64)
		if err != nil || endUS < startUS {
			return Record{}, &RecordError{Format: "google-usage", Line: g.line,
				Reason: fmt.Sprintf("bad end time %q", row[1])}
		}
		if row[2] == "" || row[3] == "" {
			return Record{}, &RecordError{Format: "google-usage", Line: g.line,
				Reason: "empty job ID or task index"}
		}
		util, err := strconv.ParseFloat(row[5], 64)
		if err != nil || !validUtil(util) {
			return Record{}, &RecordError{Format: "google-usage", Line: g.line,
				Reason: fmt.Sprintf("bad CPU usage %q", row[5])}
		}
		t := startUS / 1e6
		if t < g.lastT {
			return Record{}, &RecordError{Format: "google-usage", Line: g.line,
				Reason: fmt.Sprintf("timestamp went backwards (%.0f µs after %.0f µs)", startUS, g.lastT*1e6)}
		}
		g.lastT = t
		// Concatenation copies out of the reused csv record.
		return Record{VM: "j" + row[2] + "-t" + row[3], Time: t, Util: clamp01(util)}, nil
	}
}
