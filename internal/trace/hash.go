package trace

// Deterministic decision hashing, mirroring internal/fault: every
// stochastic choice a distortion (or the sector assigner) makes is a
// pure function of (seed, layer, vm, step), derived by FNV-64 folding
// with a splitmix64 finalizer rather than by consuming a shared random
// stream. Same-seed replays are byte-identical, and adding a new draw
// site cannot perturb the draws of existing ones.

// hashFold folds the tuple into a finalized 64-bit hash.
func hashFold(seed int64, layer, vm string, step int) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211 // FNV-64 prime
	}
	mix(uint64(seed))
	for i := 0; i < len(layer); i++ {
		mix(uint64(layer[i]))
	}
	mix(0xff) // separator: ("ab","c") must not collide with ("a","bc")
	for i := 0; i < len(vm); i++ {
		mix(uint64(vm[i]))
	}
	mix(uint64(int64(step)))
	// splitmix64 finalizer: FNV alone is too linear for threshold tests.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashUnit maps the tuple into [0,1).
func hashUnit(seed int64, layer, vm string, step int) float64 {
	return float64(hashFold(seed, layer, vm, step)>>11) / float64(1<<53)
}
