// Package trace ingests real-world utilization traces and replays them
// deterministically into the rest of the system. The paper's Fig. 6
// results were produced on one proprietary trace; the public Google
// cluster trace (task-usage tables) and the Azure VM traces map cleanly
// onto the same schema — per-VM CPU utilization sampled on a fixed grid
// — so this package turns those formats into `workload.Trace` streams
// the simulators, the serve loop, and the chaos/bench suites can all
// consume (ROADMAP item 4).
//
// Three design rules govern the package:
//
//  1. Ingestion is streaming and constant-memory. Decoders read one CSV
//     row at a time through a bounded buffer and never slurp the file;
//     the grid resampler keeps O(#VMs) state, not O(#rows). Decoding a
//     million-row input holds peak heap under a fixed bound (asserted
//     by TestIngestConstantMemory).
//
//  2. Replay is deterministic. Every stochastic choice a distortion
//     makes is a pure FNV-64+splitmix64 hash of (seed, layer, vm,
//     step), the same discipline as internal/fault — same-seed replays
//     are byte-identical, and adding a distortion cannot perturb the
//     draws of another.
//
//  3. The wall clock appears only at the replayer's pacing edge
//     (pace.go), mirroring internal/bench's sampler.go; vdclint's
//     determinism analyzer enforces the boundary structurally.
package trace

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math"
)

// Record is one normalized utilization sample: VM identity, seconds
// since the trace epoch, and CPU utilization as a fraction of the VM's
// peak requirement.
type Record struct {
	VM   string
	Time float64 // seconds since the trace epoch
	Util float64 // [0,1]
}

// Source streams records. Next returns io.EOF after the last record.
// Timestamps are strictly increasing per VM; the global interleaving is
// deterministic for a given input but not necessarily sorted (a grid
// resampler flushes a VM's bucket when that VM's own next sample
// arrives). Sources hold bounded buffers only — never the whole input.
type Source interface {
	Next() (Record, error)
}

// Sink consumes replayed records.
type Sink interface {
	Emit(Record) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record) error

// Emit implements Sink.
func (f SinkFunc) Emit(r Record) error { return f(r) }

// RecordError is a typed decode rejection carrying the input line so
// operators can find the offending row in a multi-gigabyte trace file.
type RecordError struct {
	Format string // "google-usage", "azure-vm", ...
	Line   int    // 1-based input line
	Reason string
}

// Error implements error.
func (e *RecordError) Error() string {
	return fmt.Sprintf("trace: %s line %d: %s", e.Format, e.Line, e.Reason)
}

// IsRecordError reports whether err (or anything it wraps) is a decode
// rejection rather than an I/O failure.
func IsRecordError(err error) bool {
	var re *RecordError
	return errors.As(err, &re)
}

// maxLineBytes bounds one input line; a longer line means the input is
// not the claimed format (both public corpora keep rows well under 1 KiB),
// and an unbounded line would break the constant-memory contract.
const maxLineBytes = 64 * 1024

// lineBound enforces maxLineBytes on a byte stream: csv.Reader grows
// its field buffer to hold the longest line it sees, so without this
// guard a single pathological line could defeat the constant-memory
// contract.
type lineBound struct {
	r   io.Reader
	run int
}

// Read implements io.Reader.
func (l *lineBound) Read(p []byte) (int, error) {
	n, err := l.r.Read(p)
	for _, b := range p[:n] {
		if b == '\n' {
			l.run = 0
		} else if l.run++; l.run > maxLineBytes {
			return 0, fmt.Errorf("trace: input line exceeds %d bytes — not a supported trace format", maxLineBytes)
		}
	}
	return n, err
}

// openMaybeGzip sniffs the two-byte gzip magic and transparently
// decompresses; plain inputs pass through. The returned reader is
// buffered either way.
func openMaybeGzip(r io.Reader) (*bufio.Reader, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	magic, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: sniffing input: %w", err)
	}
	if len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip input: %w", err)
		}
		return bufio.NewReaderSize(zr, 64*1024), nil
	}
	return br, nil
}

// validUtil reports whether u is a usable utilization fraction.
// Negative, NaN and Inf are rejected outright; values above 1 are
// clamped by the adapters (both public corpora contain brief >100%
// readings from hypervisor accounting).
func validUtil(u float64) bool {
	return !math.IsNaN(u) && !math.IsInf(u, 0) && u >= 0
}

func clamp01(u float64) float64 { return math.Max(0, math.Min(1, u)) }

// Drain pulls src dry into sink, returning the record count.
func Drain(src Source, sink Sink) (int, error) {
	n := 0
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := sink.Emit(rec); err != nil {
			return n, err
		}
		n++
	}
}
