package trace

import (
	"fmt"
	"io"
	"math"

	"vdcpower/internal/workload"
)

// CollectConfig parameterizes assembling a gridded stream into a
// rectangular workload.Trace.
type CollectConfig struct {
	// StepSeconds is the grid interval of the incoming records
	// (default 900). Record times must sit on this grid.
	StepSeconds float64
	// Edge aligns VMs that start late or end early relative to the
	// union horizon: hold extends the first/last observed value, zero
	// pads with idle, error rejects ragged coverage. Default GapHold.
	Edge GapPolicy
	// SectorSalt seeds the deterministic VM→sector assignment (real
	// traces carry no sector labels). The sector-remix distortion
	// replays with a different salt.
	SectorSalt int64
	// MaxVMs and MaxSteps bound the assembled matrix (defaults 2^20
	// and 2^16): a Collector's memory is O(VMs × steps) — the size of
	// its output — and these bounds keep a malformed input from
	// inflating it.
	MaxVMs   int
	MaxSteps int
}

func (c CollectConfig) withDefaults() CollectConfig {
	if c.StepSeconds <= 0 {
		c.StepSeconds = DefaultStepSeconds
	}
	if c.Edge == "" {
		c.Edge = GapHold
	}
	if c.MaxVMs == 0 {
		c.MaxVMs = DefaultMaxVMs
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 1 << 16
	}
	return c
}

// vmSeries accumulates one VM's consecutive grid samples.
type vmSeries struct {
	start int // first step index
	vals  []float64
}

// AssignSector maps a VM name to a sector deterministically; the salt
// rotates the assignment (the sector-remix distortion).
func AssignSector(salt int64, vm string) workload.Sector {
	return workload.Sector(hashFold(salt, "sector", vm, 0) % 4)
}

// Collector is the Sink that assembles a gridded stream into a
// rectangular workload.Trace: VM rows in first-seen order, the union
// step range as the horizon, ragged edges aligned per the edge policy,
// and sectors assigned by salted hash. Feed it directly (Drain) or put
// it behind a Replay pipeline, then call Trace.
type Collector struct {
	cfg    CollectConfig
	series map[string]*vmSeries
	order  []string
}

// NewCollector builds a collector. The config's gap-policy name is
// validated by Trace; construction cannot fail.
func NewCollector(cfg CollectConfig) *Collector {
	return &Collector{cfg: cfg.withDefaults(), series: map[string]*vmSeries{}}
}

// Emit implements Sink.
func (c *Collector) Emit(rec Record) error {
	kf := rec.Time / c.cfg.StepSeconds
	k := int(math.Round(kf))
	if math.Abs(kf-float64(k)) > 1e-9 {
		return fmt.Errorf("trace: record for %s at %.3f s is off the %.0f s grid (resample with NewGrid first)",
			rec.VM, rec.Time, c.cfg.StepSeconds)
	}
	s, ok := c.series[rec.VM]
	if !ok {
		if len(c.series) >= c.cfg.MaxVMs {
			return fmt.Errorf("trace: input exceeds the %d-VM bound (CollectConfig.MaxVMs)", c.cfg.MaxVMs)
		}
		s = &vmSeries{start: k}
		c.series[rec.VM] = s
		c.order = append(c.order, rec.VM)
	}
	if want := s.start + len(s.vals); k != want {
		return fmt.Errorf("trace: VM %s has non-consecutive grid steps (%d after %d); gridded sources emit contiguous steps",
			rec.VM, k, want-1)
	}
	if len(s.vals) >= c.cfg.MaxSteps {
		return fmt.Errorf("trace: input exceeds the %d-step bound (CollectConfig.MaxSteps)", c.cfg.MaxSteps)
	}
	if !validUtil(rec.Util) || rec.Util > 1 {
		return fmt.Errorf("trace: VM %s step %d utilization %v out of [0,1]", rec.VM, k, rec.Util)
	}
	s.vals = append(s.vals, rec.Util)
	return nil
}

// Trace assembles the collected records. The result satisfies
// workload.Trace's Validate contract.
func (c *Collector) Trace() (*workload.Trace, error) {
	if err := c.cfg.Edge.Validate(); err != nil {
		return nil, err
	}
	if len(c.order) == 0 {
		return nil, fmt.Errorf("trace: source produced no records")
	}
	lo, hi := math.MaxInt, math.MinInt
	for _, vm := range c.order {
		s := c.series[vm]
		if s.start < lo {
			lo = s.start
		}
		if end := s.start + len(s.vals); end > hi {
			hi = end
		}
	}
	steps := hi - lo
	if steps > c.cfg.MaxSteps {
		return nil, fmt.Errorf("trace: union horizon of %d steps exceeds the %d-step bound", steps, c.cfg.MaxSteps)
	}
	tr := &workload.Trace{
		StepSeconds: c.cfg.StepSeconds,
		Names:       make([]string, len(c.order)),
		Sectors:     make([]workload.Sector, len(c.order)),
		Series:      make([][]float64, len(c.order)),
	}
	for i, vm := range c.order {
		s := c.series[vm]
		lead, trail := s.start-lo, hi-(s.start+len(s.vals))
		if (lead > 0 || trail > 0) && c.cfg.Edge == GapError {
			return nil, fmt.Errorf("trace: VM %s covers steps [%d,%d) of [%d,%d) and the edge policy is error",
				vm, s.start, s.start+len(s.vals), lo, hi)
		}
		row := make([]float64, steps)
		first, last := s.vals[0], s.vals[len(s.vals)-1]
		if c.cfg.Edge == GapZero {
			first, last = 0, 0
		}
		for k := 0; k < lead; k++ {
			row[k] = first
		}
		copy(row[lead:], s.vals)
		for k := steps - trail; k < steps; k++ {
			row[k] = last
		}
		tr.Names[i] = vm
		tr.Sectors[i] = AssignSector(c.cfg.SectorSalt, vm)
		tr.Series[i] = row
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Collect drains a gridded source into a trace in one call.
func Collect(src Source, cfg CollectConfig) (*workload.Trace, error) {
	col := NewCollector(cfg)
	if _, err := Drain(src, col); err != nil {
		return nil, err
	}
	return col.Trace()
}

// traceSource replays a workload.Trace as a gridded stream in canonical
// order: step-major, VMs in trace order within a step — the order a
// live system would observe the samples arriving.
type traceSource struct {
	tr    *workload.Trace
	step  int
	vm    int
	steps int
}

// FromTrace wraps an in-memory trace as a Source. Useful for driving
// the replayer (and its distortions) from the synthetic generator or a
// previously collected real trace.
func FromTrace(tr *workload.Trace) Source {
	return &traceSource{tr: tr, steps: tr.NumSteps()}
}

// Next implements Source.
func (s *traceSource) Next() (Record, error) {
	if s.step >= s.steps || s.tr.NumVMs() == 0 {
		return Record{}, io.EOF
	}
	rec := Record{
		VM:   s.tr.Names[s.vm],
		Time: float64(s.step) * s.tr.StepSeconds,
		Util: s.tr.At(s.vm, s.step),
	}
	s.vm++
	if s.vm == s.tr.NumVMs() {
		s.vm = 0
		s.step++
	}
	return rec, nil
}
