package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vdcpower/internal/workload"
)

// The replay spec formats.
const (
	FormatGoogleUsage = "google-usage" // Google cluster-trace task-usage CSV
	FormatAzureVM     = "azure-vm"     // Azure public VM-trace CSV
	FormatWorkloadCSV = "workload-csv" // this repo's workload.WriteCSV output
	FormatWorkloadGob = "workload-gob" // this repo's workload.WriteGob output
	FormatSynthetic   = "synthetic"    // workload.Generate (no corpus file)
)

// GridSpec is the resampler section of a replay spec.
type GridSpec struct {
	StepSeconds float64 `json:"step_seconds,omitempty"`
	Gap         string  `json:"gap,omitempty"`
	MaxGapSteps int     `json:"max_gap_steps,omitempty"`
	MaxVMs      int     `json:"max_vms,omitempty"`
}

// SynthSpec parameterizes the synthetic format (workload.Generate).
type SynthSpec struct {
	VMs          int   `json:"vms"`
	Days         int   `json:"days,omitempty"`
	StepsPerHour int   `json:"steps_per_hour,omitempty"`
	Seed         int64 `json:"seed,omitempty"`
}

// DistortionSpec is one pipeline layer in a replay spec. Kind selects
// the distortion; the remaining fields parameterize it (unused fields
// for a kind must stay zero).
type DistortionSpec struct {
	Kind string `json:"kind"`

	// flash-crowd
	StartStep  int     `json:"start_step,omitempty"`
	Steps      int     `json:"steps,omitempty"`
	Amplify    float64 `json:"amplify,omitempty"`
	VMFraction float64 `json:"vm_fraction,omitempty"`

	// burst
	Prob     float64 `json:"prob,omitempty"`
	MinSteps int     `json:"min_steps,omitempty"`
	MaxSteps int     `json:"max_steps,omitempty"`
	MinLevel float64 `json:"min_level,omitempty"`
	MaxLevel float64 `json:"max_level,omitempty"`

	// sector-remix
	Salt int64 `json:"salt,omitempty"`

	// time-warp
	MaxLagSteps int `json:"max_lag_steps,omitempty"`
}

// build instantiates the distortion a spec describes.
func (d DistortionSpec) build() (Distortion, error) {
	switch d.Kind {
	case "flash-crowd":
		if d.Steps <= 0 || d.Amplify <= 1 || d.VMFraction <= 0 || d.VMFraction > 1 {
			return nil, fmt.Errorf("trace: flash-crowd needs steps>0, amplify>1, vm_fraction in (0,1] (got steps=%d amplify=%v vm_fraction=%v)",
				d.Steps, d.Amplify, d.VMFraction)
		}
		return FlashCrowd{StartStep: d.StartStep, Steps: d.Steps, Amplify: d.Amplify, VMFraction: d.VMFraction}, nil
	case "burst":
		if d.Prob <= 0 || d.Prob > 1 || d.MinSteps <= 0 || d.MaxSteps < d.MinSteps ||
			d.MinLevel < 0 || d.MaxLevel < d.MinLevel || d.MaxLevel > 1 {
			return nil, fmt.Errorf("trace: burst needs prob in (0,1], 0 < min_steps <= max_steps, 0 <= min_level <= max_level <= 1 (got prob=%v steps=[%d,%d] level=[%v,%v])",
				d.Prob, d.MinSteps, d.MaxSteps, d.MinLevel, d.MaxLevel)
		}
		return BurstInject{Prob: d.Prob, MinSteps: d.MinSteps, MaxSteps: d.MaxSteps, MinLevel: d.MinLevel, MaxLevel: d.MaxLevel}, nil
	case "sector-remix":
		return SectorRemix{Salt: d.Salt}, nil
	case "time-warp":
		if d.MaxLagSteps <= 0 {
			return nil, fmt.Errorf("trace: time-warp needs max_lag_steps>0 (got %d)", d.MaxLagSteps)
		}
		return &TimeWarp{MaxLagSteps: d.MaxLagSteps}, nil
	}
	return nil, fmt.Errorf("trace: unknown distortion kind %q (flash-crowd, burst, sector-remix or time-warp)", d.Kind)
}

// ReplaySpec is the JSON document cmd/vdcreplay and dcsim -replay
// consume: which corpus to read, how to grid it, and which seeded
// distortions to run. Unknown fields are rejected so typos fail loudly.
type ReplaySpec struct {
	// Format selects the decoder (the Format* constants).
	Format string `json:"format"`
	// Path locates the corpus, relative to the spec file's directory
	// (absolute paths pass through). Gzip is detected by magic bytes.
	// Unused for the synthetic format.
	Path string `json:"path,omitempty"`
	// Seed drives every distortion draw and, for sector assignment, the
	// base salt.
	Seed int64 `json:"seed"`
	// Speedup > 0 paces emission against the wall clock (cmd/vdcreplay
	// -pace only; trace assembly never paces). 0 replays unpaced.
	Speedup float64 `json:"speedup,omitempty"`
	// Grid configures resampling for the raw formats; workload and
	// synthetic sources are already on their own grid.
	Grid GridSpec `json:"grid,omitempty"`
	// Edge aligns ragged VM coverage when assembling the trace
	// (hold/zero/error; default hold).
	Edge string `json:"edge,omitempty"`
	// MaxVMs / MaxSteps bound the assembled trace.
	MaxVMs   int `json:"max_vms,omitempty"`
	MaxSteps int `json:"max_steps,omitempty"`
	// Synthetic parameterizes the synthetic format.
	Synthetic *SynthSpec `json:"synthetic,omitempty"`
	// Distortions run in order on every record.
	Distortions []DistortionSpec `json:"distortions,omitempty"`

	dir string // spec file's directory, for resolving Path
}

// LoadSpec reads and validates a replay spec file. Relative corpus
// paths resolve against the spec file's directory, so a spec and its
// corpus travel together.
func LoadSpec(path string) (*ReplaySpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck read-side close; the spec was fully decoded
	defer f.Close()
	sp, err := ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sp.dir = filepath.Dir(path)
	return sp, nil
}

// ParseSpec decodes and validates a replay spec document. Relative
// corpus paths resolve against the current directory; prefer LoadSpec
// for file-based specs.
func ParseSpec(r io.Reader) (*ReplaySpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp ReplaySpec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("trace: replay spec: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate checks the spec without touching the filesystem.
func (sp *ReplaySpec) Validate() error {
	switch sp.Format {
	case FormatGoogleUsage, FormatAzureVM, FormatWorkloadCSV, FormatWorkloadGob:
		if sp.Path == "" {
			return fmt.Errorf("trace: replay spec: format %q needs a path", sp.Format)
		}
	case FormatSynthetic:
		if sp.Synthetic == nil || sp.Synthetic.VMs <= 0 {
			return fmt.Errorf("trace: replay spec: synthetic format needs a synthetic section with vms>0")
		}
	default:
		return fmt.Errorf("trace: replay spec: unknown format %q (%s)", sp.Format,
			strings.Join([]string{FormatGoogleUsage, FormatAzureVM, FormatWorkloadCSV, FormatWorkloadGob, FormatSynthetic}, ", "))
	}
	if sp.Speedup < 0 {
		return fmt.Errorf("trace: replay spec: speedup must be >= 0 (got %v)", sp.Speedup)
	}
	if err := GapPolicy(sp.Grid.Gap).Validate(); err != nil {
		return err
	}
	if err := GapPolicy(sp.Edge).Validate(); err != nil {
		return err
	}
	for i, d := range sp.Distortions {
		if _, err := d.build(); err != nil {
			return fmt.Errorf("trace: replay spec: distortion %d: %w", i, err)
		}
	}
	return nil
}

// Pipeline builds a fresh distortion pipeline (stateful distortions
// must not be shared across replays).
func (sp *ReplaySpec) Pipeline() ([]Distortion, error) {
	out := make([]Distortion, len(sp.Distortions))
	for i, d := range sp.Distortions {
		built, err := d.build()
		if err != nil {
			return nil, err
		}
		out[i] = built
	}
	return out, nil
}

// SectorSalt is the salt Collect uses for VM→sector assignment: the
// replay seed, overridden by the last sector-remix distortion if any.
func (sp *ReplaySpec) SectorSalt() int64 {
	salt := sp.Seed
	for _, d := range sp.Distortions {
		if d.Kind == "sector-remix" {
			salt = d.Salt
		}
	}
	return salt
}

// StepSeconds is the grid interval the spec resolves to.
func (sp *ReplaySpec) StepSeconds() float64 {
	if sp.Grid.StepSeconds > 0 {
		return sp.Grid.StepSeconds
	}
	return DefaultStepSeconds
}

// resolve maps the corpus path relative to the spec file's directory.
func (sp *ReplaySpec) resolve() string {
	if sp.dir == "" || filepath.IsAbs(sp.Path) {
		return sp.Path
	}
	return filepath.Join(sp.dir, sp.Path)
}

// Open builds the gridded source the spec describes. The caller must
// Close the returned closer (a no-op for the synthetic format) after
// draining the source.
func (sp *ReplaySpec) Open() (Source, io.Closer, error) {
	switch sp.Format {
	case FormatSynthetic:
		cfg := workload.GenConfig{NumVMs: sp.Synthetic.VMs, Days: sp.Synthetic.Days, StepsPerHour: sp.Synthetic.StepsPerHour, Seed: sp.Synthetic.Seed}
		if cfg.Days <= 0 {
			cfg.Days = 1
		}
		if cfg.StepsPerHour <= 0 {
			cfg.StepsPerHour = 4
		}
		tr, err := workload.Generate(cfg)
		if err != nil {
			return nil, nil, err
		}
		return FromTrace(tr), nopCloser{}, nil
	case FormatWorkloadCSV, FormatWorkloadGob:
		f, err := os.Open(sp.resolve())
		if err != nil {
			return nil, nil, err
		}
		br, err := openMaybeGzip(f)
		if err != nil {
			//lint:ignore errcheck the sniff error is already being returned
			f.Close()
			return nil, nil, err
		}
		var tr *workload.Trace
		if sp.Format == FormatWorkloadCSV {
			tr, err = workload.ReadCSV(br)
		} else {
			tr, err = workload.ReadGob(br)
		}
		cerr := f.Close()
		if err != nil {
			return nil, nil, err
		}
		if cerr != nil {
			return nil, nil, cerr
		}
		return FromTrace(tr), nopCloser{}, nil
	}
	// Raw formats: stream through the decoder and the grid resampler.
	f, err := os.Open(sp.resolve())
	if err != nil {
		return nil, nil, err
	}
	var raw Source
	switch sp.Format {
	case FormatGoogleUsage:
		raw, err = NewGoogleUsage(f)
	case FormatAzureVM:
		raw, err = NewAzureVM(f)
	}
	if err != nil {
		//lint:ignore errcheck the decode error is already being returned
		f.Close()
		return nil, nil, err
	}
	grid, err := NewGrid(raw, GridConfig{
		StepSeconds: sp.Grid.StepSeconds,
		Gap:         GapPolicy(sp.Grid.Gap),
		MaxGapSteps: sp.Grid.MaxGapSteps,
		MaxVMs:      sp.Grid.MaxVMs,
	})
	if err != nil {
		//lint:ignore errcheck the config error is already being returned
		f.Close()
		return nil, nil, err
	}
	return grid, f, nil
}

// Provenance records where a replayed trace came from and exactly how
// it was distorted — enough to reproduce it bit for bit from the same
// corpus.
type Provenance struct {
	Source      string           `json:"source"`
	Seed        int64            `json:"seed"`
	Records     int              `json:"records"`
	Distorted   int              `json:"distorted"`
	Distortions []DistortionStat `json:"distortions,omitempty"`
}

// SourceLabel renders the spec's corpus identity for provenance.
func (sp *ReplaySpec) SourceLabel() string {
	if sp.Format == FormatSynthetic {
		return fmt.Sprintf("%s:vms=%d,seed=%d", sp.Format, sp.Synthetic.VMs, sp.Synthetic.Seed)
	}
	return sp.Format + ":" + filepath.Base(sp.Path)
}

// Build runs the full pipeline — decode, grid, distort, collect — and
// returns the assembled trace plus its provenance. Build never paces
// (pacing is cmd/vdcreplay's concern); the result is a deterministic
// function of (corpus bytes, spec).
func (sp *ReplaySpec) Build() (*workload.Trace, *Provenance, error) {
	src, closer, err := sp.Open()
	if err != nil {
		return nil, nil, err
	}
	//lint:ignore errcheck read-side close; the stream was drained
	defer closer.Close()
	pipeline, err := sp.Pipeline()
	if err != nil {
		return nil, nil, err
	}
	col := NewCollector(CollectConfig{
		StepSeconds: sp.StepSeconds(),
		Edge:        GapPolicy(sp.Edge),
		SectorSalt:  sp.SectorSalt(),
		MaxVMs:      sp.MaxVMs,
		MaxSteps:    sp.MaxSteps,
	})
	stats, err := Replay(src, col, ReplayConfig{StepSeconds: sp.StepSeconds(), Seed: sp.Seed, Distortions: pipeline})
	if err != nil {
		return nil, nil, err
	}
	tr, err := col.Trace()
	if err != nil {
		return nil, nil, err
	}
	prov := &Provenance{
		Source:      sp.SourceLabel(),
		Seed:        sp.Seed,
		Records:     stats.Records,
		Distorted:   stats.Distorted,
		Distortions: stats.Distortion,
	}
	return tr, prov, nil
}

// nopCloser satisfies io.Closer for sources with nothing to close.
type nopCloser struct{}

// Close implements io.Closer.
func (nopCloser) Close() error { return nil }
