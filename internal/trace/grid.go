package trace

import (
	"fmt"
	"io"
)

// GapPolicy decides what fills a grid step with no underlying samples.
type GapPolicy string

// The gap policies. Hold repeats the last observed value (the default:
// a VM that stopped reporting is still running at its last level),
// Zero treats missing as idle, Error rejects the input.
const (
	GapHold  GapPolicy = "hold"
	GapZero  GapPolicy = "zero"
	GapError GapPolicy = "error"
)

// Validate checks the policy name.
func (p GapPolicy) Validate() error {
	switch p {
	case GapHold, GapZero, GapError, "":
		return nil
	}
	return fmt.Errorf("trace: unknown gap policy %q (hold, zero or error)", p)
}

// Grid defaults: the paper's 15-minute sampling interval, a one-day
// maximum gap (a VM silent longer than that is treated as malformed
// input rather than padded forever — the bound also keeps the pending
// queue, and with it memory, constant), and a generous VM-count bound.
const (
	DefaultStepSeconds = 900
	DefaultMaxGapSteps = 96
	DefaultMaxVMs      = 1 << 20
)

// GridConfig parameterizes resampling onto the utilization grid.
type GridConfig struct {
	// StepSeconds is the grid interval (default 900 — the paper's
	// 15-minute schema).
	StepSeconds float64
	// Gap fills steps with no samples (default GapHold).
	Gap GapPolicy
	// MaxGapSteps bounds how many consecutive steps a gap may span
	// before the input is rejected (default 96; <0 disables the bound
	// and with it the constant-memory guarantee).
	MaxGapSteps int
	// MaxVMs bounds the number of distinct VMs tracked (the resampler
	// keeps O(#VMs) state); exceeding it is an error. Default 2^20.
	MaxVMs int
}

func (c GridConfig) withDefaults() GridConfig {
	if c.StepSeconds <= 0 {
		c.StepSeconds = DefaultStepSeconds
	}
	if c.Gap == "" {
		c.Gap = GapHold
	}
	if c.MaxGapSteps == 0 {
		c.MaxGapSteps = DefaultMaxGapSteps
	}
	if c.MaxVMs == 0 {
		c.MaxVMs = DefaultMaxVMs
	}
	return c
}

// vmBucket is the per-VM accumulator: the open grid step and the mean
// of the raw samples that landed in it.
type vmBucket struct {
	step int // open bucket index
	sum  float64
	n    int
	last float64 // last completed bucket's value, for GapHold
}

// Grid normalizes a raw source's heterogeneous sampling intervals onto
// the fixed utilization grid: samples landing in the same step average;
// empty steps fill per the gap policy. It emits one Record per (VM,
// step) with Time = step*StepSeconds. A VM's bucket flushes when its
// own next sample crosses the step boundary (and finally at EOF, in
// first-seen VM order), so emission order is a deterministic function
// of the input alone. Memory is O(#VMs + MaxGapSteps), never O(#rows).
type Grid struct {
	src     Source
	cfg     GridConfig
	vms     map[string]*vmBucket
	order   []string // first-seen order, for the EOF flush
	pending []Record // flushed, not yet returned (FIFO; bounded by MaxGapSteps+1)
	err     error
	done    bool
}

// NewGrid wraps src in the resampler.
func NewGrid(src Source, cfg GridConfig) (*Grid, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Gap.Validate(); err != nil {
		return nil, err
	}
	return &Grid{src: src, cfg: cfg, vms: map[string]*vmBucket{}}, nil
}

// StepSeconds returns the grid interval.
func (g *Grid) StepSeconds() float64 { return g.cfg.StepSeconds }

// NumVMs returns the number of distinct VMs seen so far.
func (g *Grid) NumVMs() int { return len(g.vms) }

// Next implements Source.
func (g *Grid) Next() (Record, error) {
	for {
		if len(g.pending) > 0 {
			rec := g.pending[0]
			g.pending = g.pending[1:]
			if len(g.pending) == 0 {
				g.pending = g.pending[:0] // reuse the backing array
			}
			return rec, nil
		}
		if g.err != nil {
			return Record{}, g.err
		}
		if g.done {
			return Record{}, io.EOF
		}
		raw, err := g.src.Next()
		if err == io.EOF {
			g.done = true
			g.flushAll()
			continue
		}
		if err != nil {
			g.err = err
			return Record{}, err
		}
		if err := g.ingest(raw); err != nil {
			g.err = err
			return Record{}, err
		}
	}
}

// ingest folds one raw sample into its VM's bucket, flushing completed
// buckets (and gap fill) into the pending queue.
func (g *Grid) ingest(raw Record) error {
	k := int(raw.Time / g.cfg.StepSeconds)
	b, ok := g.vms[raw.VM]
	if !ok {
		if len(g.vms) >= g.cfg.MaxVMs {
			return fmt.Errorf("trace: input exceeds the %d-VM bound (GridConfig.MaxVMs)", g.cfg.MaxVMs)
		}
		b = &vmBucket{step: k}
		g.vms[raw.VM] = b
		g.order = append(g.order, raw.VM)
	}
	switch {
	case k < b.step:
		return &RecordError{Format: "grid", Line: 0,
			Reason: fmt.Sprintf("VM %s sample at step %d after step %d (per-VM timestamps must not go backwards)", raw.VM, k, b.step)}
	case k == b.step:
		b.sum += raw.Util
		b.n++
	default:
		if err := g.flushTo(raw.VM, b, k); err != nil {
			return err
		}
		b.sum, b.n = raw.Util, 1
	}
	return nil
}

// flushTo completes b's open bucket, fills the gap up to (not
// including) step k, and reopens b at k. An empty open bucket (n == 0,
// only possible for a VM created by flushAll edge cases) emits nothing.
func (g *Grid) flushTo(vm string, b *vmBucket, k int) error {
	if b.n > 0 {
		v := b.sum / float64(b.n)
		g.pending = append(g.pending, Record{VM: vm, Time: float64(b.step) * g.cfg.StepSeconds, Util: v})
		b.last = v
	}
	gap := k - b.step - 1
	if gap > 0 {
		if g.cfg.MaxGapSteps >= 0 && gap > g.cfg.MaxGapSteps {
			return &RecordError{Format: "grid",
				Reason: fmt.Sprintf("VM %s has a %d-step gap (bound %d; see GridConfig.MaxGapSteps)", vm, gap, g.cfg.MaxGapSteps)}
		}
		switch g.cfg.Gap {
		case GapError:
			return &RecordError{Format: "grid",
				Reason: fmt.Sprintf("VM %s missing %d step(s) before step %d (gap policy error)", vm, gap, k)}
		case GapZero:
			for s := b.step + 1; s < k; s++ {
				g.pending = append(g.pending, Record{VM: vm, Time: float64(s) * g.cfg.StepSeconds})
			}
		default: // GapHold
			for s := b.step + 1; s < k; s++ {
				g.pending = append(g.pending, Record{VM: vm, Time: float64(s) * g.cfg.StepSeconds, Util: b.last})
			}
		}
	}
	b.step = k
	return nil
}

// flushAll completes every VM's open bucket at EOF, in first-seen order.
func (g *Grid) flushAll() {
	for _, vm := range g.order {
		b := g.vms[vm]
		if b.n > 0 {
			v := b.sum / float64(b.n)
			g.pending = append(g.pending, Record{VM: vm, Time: float64(b.step) * g.cfg.StepSeconds, Util: v})
			b.n = 0
		}
	}
}
