package trace

// Native fuzzing for the raw-corpus decoders, mirroring the workload
// package's FuzzReadCSV: arbitrary bytes must either be rejected with
// an error or decode into a record stream honoring the Source contract
// — per-VM nondecreasing grid-truncated times, utilizations in [0,1],
// and a decode that is deterministic (two reads of the same bytes yield
// identical streams). Seeds live in testdata/fuzz/FuzzRead*.

import (
	"bytes"
	"io"
	"testing"
)

// drainAll decodes every record, stopping at the first error.
func drainAll(src Source) ([]Record, error) {
	var out []Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// checkStream asserts the Source contract on an accepted prefix.
func checkStream(t *testing.T, recs []Record) {
	t.Helper()
	last := map[string]float64{}
	prev := -1.0
	for i, r := range recs {
		if r.VM == "" {
			t.Fatalf("record %d: empty VM", i)
		}
		if r.Util < 0 || r.Util > 1 || r.Util != r.Util {
			t.Fatalf("record %d: utilization %v out of [0,1]", i, r.Util)
		}
		if r.Time < prev {
			t.Fatalf("record %d: global time went backwards (%v after %v)", i, r.Time, prev)
		}
		prev = r.Time
		if lt, ok := last[r.VM]; ok && r.Time < lt {
			t.Fatalf("record %d: VM %s time went backwards (%v after %v)", i, r.VM, r.Time, lt)
		}
		last[r.VM] = r.Time
	}
}

// sameRecords asserts two decodes of the same bytes agree, errors
// included.
func sameRecords(t *testing.T, a, b []Record, errA, errB error) {
	t.Helper()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("decode determinism: %v vs %v", errA, errB)
	}
	if len(a) != len(b) {
		t.Fatalf("decode determinism: %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decode determinism: record %d %+v vs %+v", i, a[i], b[i])
		}
	}
}

func FuzzReadGoogleUsage(f *testing.F) {
	f.Add([]byte("0,300000000,6250000000,0,m0001,0.25\n300000000,600000000,6250000000,0,m0001,0.5\n"))
	f.Add([]byte("0,300000000,6250000000,0,m0001,\n"))    // empty usage: skipped
	f.Add([]byte("0,300000000,6250000000,0,m0001,NaN\n")) // rejected sample
	f.Add([]byte("600,300,6250000000,0,m0001,0.25\n"))    // end before start
	f.Add([]byte("not,a,trace\n"))                        // short row
	f.Add([]byte("900000000,1200000000,1,2,m1,1.75\n"))   // >100% clamps
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := NewGoogleUsage(bytes.NewReader(data))
		if err != nil {
			return
		}
		recs, derr := drainAll(src)
		checkStream(t, recs)
		src2, err := NewGoogleUsage(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second open failed: %v", err)
		}
		recs2, derr2 := drainAll(src2)
		sameRecords(t, recs, recs2, derr, derr2)
	})
}

func FuzzReadAzureVM(f *testing.F) {
	f.Add([]byte("timestamp,vm_id,min_cpu,max_cpu,avg_cpu\n0,abc,1,9,5\n300,abc,1,9,7.5\n"))
	f.Add([]byte("0,vm1,0,50,25\n300,vm1,0,50,\n600,vm1,0,50,30\n")) // empty avg: skipped
	f.Add([]byte("0,vm1,0,50,-3\n"))                                 // negative: rejected
	f.Add([]byte("600,vm1,0,50,25\n300,vm1,0,50,25\n"))              // backwards time
	f.Add([]byte("too,short\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := NewAzureVM(bytes.NewReader(data))
		if err != nil {
			return
		}
		recs, derr := drainAll(src)
		checkStream(t, recs)
		src2, err := NewAzureVM(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second open failed: %v", err)
		}
		recs2, derr2 := drainAll(src2)
		sameRecords(t, recs, recs2, derr, derr2)
	})
}
