package trace

// gen.go fabricates schema-valid raw corpora in the Google and Azure
// on-disk formats. The real traces are hundreds of gigabytes and are
// not redistributable, so tests, fuzz seeds, benchmarks, and the
// committed testdata mini-corpus are all produced here: deterministic
// (seeded, hash-driven), streamed row by row (a million-row corpus
// costs O(1) memory to write), and deliberately messy in the ways the
// decoders must survive — sub-grid sampling, per-VM jitter, occasional
// gaps and empty fields.

import (
	"bufio"
	"fmt"
	"io"
)

// FabConfig parameterizes corpus fabrication.
type FabConfig struct {
	// VMs is the number of distinct VMs (tasks for the Google format).
	VMs int
	// Steps is the number of 15-minute grid steps each VM spans.
	Steps int
	// SamplesPerStep is how many raw rows land inside one grid step
	// (Google usage reports every 300 s → 3; Azure every 300 s → 3).
	// Default 3.
	SamplesPerStep int
	// Seed drives every value; same config → byte-identical corpus.
	Seed int64
	// GapProb is the per-(VM, step) probability that a whole step's
	// rows are dropped, exercising the resampler's gap policy. Gaps
	// never exceed one step, and never hit a VM's first or last step.
	GapProb float64
	// EmptyProb is the per-row probability of an empty utilization
	// field (the Google trace has them); decoders must skip, not fail.
	EmptyProb float64
	// StepSeconds overrides the 900 s grid (tests only).
	StepSeconds float64
}

func (c FabConfig) withDefaults() FabConfig {
	if c.SamplesPerStep <= 0 {
		c.SamplesPerStep = 3
	}
	if c.StepSeconds <= 0 {
		c.StepSeconds = DefaultStepSeconds
	}
	return c
}

// Rows returns the number of data rows the config fabricates, before
// gap and empty-field drops.
func (c FabConfig) Rows() int {
	c = c.withDefaults()
	return c.VMs * c.Steps * c.SamplesPerStep
}

// fabUtil is the ground-truth utilization for (vm, step): a hashed
// base level plus a small per-step wobble, in (0, 1).
func fabUtil(seed int64, vm string, step int) float64 {
	base := 0.1 + 0.6*hashUnit(seed, "fab-base", vm, 0)
	wobble := 0.2 * (hashUnit(seed, "fab-wobble", vm, step) - 0.5)
	return clamp01(base + wobble)
}

// fabGap reports whether (vm, step) is a dropped step. First and last
// steps never drop, so every VM's span is anchored.
func fabGap(cfg FabConfig, vm string, step int) bool {
	if cfg.GapProb <= 0 || step == 0 || step == cfg.Steps-1 {
		return false
	}
	// No two consecutive gaps: a gap at step s requires s-1 present.
	if hashUnit(cfg.Seed, "fab-gap", vm, step) >= cfg.GapProb {
		return false
	}
	return hashUnit(cfg.Seed, "fab-gap", vm, step-1) >= cfg.GapProb || step-1 == 0
}

// WriteGoogleUsage fabricates a Google cluster-trace task-usage CSV:
// start_us, end_us, job, task, machine, mean_cpu_rate, with rows
// interleaved across tasks in time order (as the real trace shards
// are). Row count is Rows() minus gap drops.
func WriteGoogleUsage(w io.Writer, cfg FabConfig) (int, error) {
	cfg = cfg.withDefaults()
	bw := bufio.NewWriter(w)
	rows := 0
	sub := cfg.StepSeconds / float64(cfg.SamplesPerStep)
	for step := 0; step < cfg.Steps; step++ {
		for i := 0; i < cfg.SamplesPerStep; i++ {
			for v := 0; v < cfg.VMs; v++ {
				job := 6250000000 + int64(v)/8
				task := int64(v) % 8
				vm := fmt.Sprintf("j%d-t%d", job, task)
				if fabGap(cfg, vm, step) {
					continue
				}
				startUS := int64((float64(step)*cfg.StepSeconds + float64(i)*sub) * 1e6)
				endUS := startUS + int64(sub*1e6)
				util := ""
				if hashUnit(cfg.Seed, "fab-empty", vm, step*cfg.SamplesPerStep+i) >= cfg.EmptyProb {
					util = fmt.Sprintf("%.5f", fabUtil(cfg.Seed, vm, step))
				}
				if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,m%04d,%s\n", startUS, endUS, job, task, v%500, util); err != nil {
					return rows, err
				}
				rows++
			}
		}
	}
	return rows, bw.Flush()
}

// WriteAzureVM fabricates an Azure public-dataset VM CSV: timestamp
// (seconds), vm id, min/max/avg CPU percent, with a header row (the
// real dataset ships one; the decoder skips it).
func WriteAzureVM(w io.Writer, cfg FabConfig) (int, error) {
	cfg = cfg.withDefaults()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "timestamp,vm_id,min_cpu,max_cpu,avg_cpu"); err != nil {
		return 0, err
	}
	rows := 0
	sub := cfg.StepSeconds / float64(cfg.SamplesPerStep)
	for step := 0; step < cfg.Steps; step++ {
		for i := 0; i < cfg.SamplesPerStep; i++ {
			for v := 0; v < cfg.VMs; v++ {
				id := fmt.Sprintf("vm%06d", v)
				vm := "az-" + id
				if fabGap(cfg, vm, step) {
					continue
				}
				ts := int64(float64(step)*cfg.StepSeconds + float64(i)*sub)
				avg := ""
				if hashUnit(cfg.Seed, "fab-empty", vm, step*cfg.SamplesPerStep+i) >= cfg.EmptyProb {
					avg = fmt.Sprintf("%.3f", 100*fabUtil(cfg.Seed, vm, step))
				}
				pct := 100 * fabUtil(cfg.Seed, vm, step)
				if _, err := fmt.Fprintf(bw, "%d,%s,%.3f,%.3f,%s\n", ts, id, pct*0.5, clampPct(pct*1.5), avg); err != nil {
					return rows, err
				}
				rows++
			}
		}
	}
	return rows, bw.Flush()
}

func clampPct(p float64) float64 {
	if p > 100 {
		return 100
	}
	return p
}
