package trace

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"vdcpower/internal/workload"
)

// sliceSource replays a fixed record slice as a Source.
type sliceSource struct {
	recs []Record
	i    int
}

func (s *sliceSource) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

func mustDrain(t *testing.T, src Source) []Record {
	t.Helper()
	var out []Record
	if _, err := Drain(src, SinkFunc(func(r Record) error { out = append(out, r); return nil })); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return out
}

// --- adapters ---

func TestGoogleUsageDecodesSkipsAndClamps(t *testing.T) {
	in := "0,300000000,1,2,m1,0.25\n" +
		"300000000,600000000,1,2,m1,\n" + // empty usage: skipped
		"600000000,900000000,1,2,m1,1.75\n" // >100%: clamps to 1
	src, err := NewGoogleUsage(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	recs := mustDrain(t, src)
	want := []Record{
		{VM: "j1-t2", Time: 0, Util: 0.25},
		{VM: "j1-t2", Time: 600, Util: 1},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
	if src.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1", src.Skipped())
	}
}

func TestGoogleUsageRejectsMalformedRows(t *testing.T) {
	cases := map[string]string{
		"short row":       "1,2,3\n",
		"bad start":       "x,300000000,1,2,m1,0.5\n",
		"end before":      "600,300,1,2,m1,0.5\n",
		"empty job":       "0,300000000,,2,m1,0.5\n",
		"NaN usage":       "0,300000000,1,2,m1,NaN\n",
		"negative usage":  "0,300000000,1,2,m1,-0.5\n",
		"backwards times": "300000000,600000000,1,2,m1,0.5\n0,300000000,1,2,m1,0.5\n",
	}
	for name, in := range cases {
		src, err := NewGoogleUsage(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if _, err := Drain(src, SinkFunc(func(Record) error { return nil })); !IsRecordError(err) {
			t.Fatalf("%s: err = %v, want a *RecordError", name, err)
		}
	}
}

func TestAzureVMDecodesHeaderAndPercent(t *testing.T) {
	in := "timestamp,vm_id,min_cpu,max_cpu,avg_cpu\n" +
		"0,abc,10,90,50\n" +
		"300,abc,10,90,\n" + // empty avg: skipped
		"600,abc,10,90,75\n"
	src, err := NewAzureVM(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	recs := mustDrain(t, src)
	want := []Record{
		{VM: "az-abc", Time: 0, Util: 0.5},
		{VM: "az-abc", Time: 600, Util: 0.75},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
	if src.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1", src.Skipped())
	}
}

func TestAzureVMRejectsMalformedRows(t *testing.T) {
	cases := map[string]string{
		"short row":      "1,2\n",
		"bad timestamp":  "0,a,1,9,5\nx,a,1,9,5\n", // line 2: header tolerance is line 1 only
		"empty vm":       "0,,1,9,5\n",
		"negative avg":   "0,a,1,9,-5\n",
		"backwards time": "600,a,1,9,5\n300,a,1,9,5\n",
	}
	for name, in := range cases {
		src, err := NewAzureVM(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if _, err := Drain(src, SinkFunc(func(Record) error { return nil })); !IsRecordError(err) {
			t.Fatalf("%s: err = %v, want a *RecordError", name, err)
		}
	}
}

func TestGzipInputDecodesIdentically(t *testing.T) {
	var plain bytes.Buffer
	if _, err := WriteGoogleUsage(&plain, FabConfig{VMs: 3, Steps: 4, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	srcP, err := NewGoogleUsage(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	srcZ, err := NewGoogleUsage(bytes.NewReader(zipped.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rp, rz := mustDrain(t, srcP), mustDrain(t, srcZ)
	if len(rp) != len(rz) {
		t.Fatalf("plain %d records vs gzip %d", len(rp), len(rz))
	}
	for i := range rp {
		if rp[i] != rz[i] {
			t.Fatalf("record %d: plain %+v vs gzip %+v", i, rp[i], rz[i])
		}
	}
}

func TestLineBoundRejectsPathologicalLine(t *testing.T) {
	long := strings.Repeat("a", maxLineBytes+2)
	src, err := NewGoogleUsage(strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(src, SinkFunc(func(Record) error { return nil })); err == nil {
		t.Fatal("a line beyond maxLineBytes decoded without error")
	}
}

// --- grid ---

func gridOver(t *testing.T, recs []Record, cfg GridConfig) ([]Record, error) {
	t.Helper()
	g, err := NewGrid(&sliceSource{recs: recs}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []Record
	_, derr := Drain(g, SinkFunc(func(r Record) error { out = append(out, r); return nil }))
	return out, derr
}

func TestGridAveragesWithinStep(t *testing.T) {
	out, err := gridOver(t, []Record{
		{VM: "a", Time: 0, Util: 0.2},
		{VM: "a", Time: 300, Util: 0.4},
		{VM: "a", Time: 600, Util: 0.6},
		{VM: "a", Time: 900, Util: 1.0},
	}, GridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{{VM: "a", Time: 0, Util: 0.4}, {VM: "a", Time: 900, Util: 1.0}}
	if len(out) != len(want) {
		t.Fatalf("got %d records %v, want %d", len(out), out, len(want))
	}
	for i := range want {
		if math.Abs(out[i].Util-want[i].Util) > 1e-12 || out[i].Time != want[i].Time || out[i].VM != want[i].VM {
			t.Fatalf("record %d = %+v, want %+v", i, out[i], want[i])
		}
	}
}

func TestGridGapPolicies(t *testing.T) {
	// VM a reports at steps 0 and 3: steps 1 and 2 are a gap.
	recs := []Record{
		{VM: "a", Time: 0, Util: 0.5},
		{VM: "a", Time: 2700, Util: 0.9},
	}
	hold, err := gridOver(t, recs, GridConfig{Gap: GapHold})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := gridOver(t, recs, GridConfig{Gap: GapZero})
	if err != nil {
		t.Fatal(err)
	}
	if len(hold) != 4 || len(zero) != 4 {
		t.Fatalf("hold %d records, zero %d, want 4 each", len(hold), len(zero))
	}
	if hold[1].Util != 0.5 || hold[2].Util != 0.5 {
		t.Fatalf("hold gap fill = %v, %v, want 0.5, 0.5", hold[1].Util, hold[2].Util)
	}
	if zero[1].Util != 0 || zero[2].Util != 0 {
		t.Fatalf("zero gap fill = %v, %v, want 0, 0", zero[1].Util, zero[2].Util)
	}
	if _, err := gridOver(t, recs, GridConfig{Gap: GapError}); !IsRecordError(err) {
		t.Fatalf("gap policy error: err = %v, want a *RecordError", err)
	}
}

func TestGridMaxGapStepsBound(t *testing.T) {
	recs := []Record{
		{VM: "a", Time: 0, Util: 0.5},
		{VM: "a", Time: 3600, Util: 0.5}, // 3-step gap
	}
	if _, err := gridOver(t, recs, GridConfig{MaxGapSteps: 2}); !IsRecordError(err) {
		t.Fatalf("gap beyond bound: err = %v, want a *RecordError", err)
	}
	if _, err := gridOver(t, recs, GridConfig{MaxGapSteps: 3}); err != nil {
		t.Fatalf("gap within bound rejected: %v", err)
	}
}

func TestGridRejectsBackwardsPerVMTime(t *testing.T) {
	recs := []Record{
		{VM: "a", Time: 1800, Util: 0.5},
		{VM: "a", Time: 0, Util: 0.5},
	}
	if _, err := gridOver(t, recs, GridConfig{}); !IsRecordError(err) {
		t.Fatalf("backwards per-VM time: err = %v, want a *RecordError", err)
	}
}

func TestGridMaxVMsBound(t *testing.T) {
	recs := []Record{
		{VM: "a", Time: 0, Util: 0.5},
		{VM: "b", Time: 0, Util: 0.5},
		{VM: "c", Time: 0, Util: 0.5},
	}
	if _, err := gridOver(t, recs, GridConfig{MaxVMs: 2}); err == nil {
		t.Fatal("third VM accepted past MaxVMs=2")
	}
}

// --- collector ---

func TestCollectorEdgeAlignment(t *testing.T) {
	// VM a covers steps [0,3), b covers [1,2): b needs lead+trail fill.
	recs := []Record{
		{VM: "a", Time: 0, Util: 0.1},
		{VM: "a", Time: 900, Util: 0.2},
		{VM: "b", Time: 900, Util: 0.8},
		{VM: "a", Time: 1800, Util: 0.3},
	}
	build := func(edge GapPolicy) (*workload.Trace, error) {
		return Collect(&sliceSource{recs: recs}, CollectConfig{Edge: edge})
	}
	hold, err := build(GapHold)
	if err != nil {
		t.Fatal(err)
	}
	if got := hold.Series[1]; got[0] != 0.8 || got[1] != 0.8 || got[2] != 0.8 {
		t.Fatalf("hold edge fill = %v, want [0.8 0.8 0.8]", got)
	}
	zero, err := build(GapZero)
	if err != nil {
		t.Fatal(err)
	}
	if got := zero.Series[1]; got[0] != 0 || got[1] != 0.8 || got[2] != 0 {
		t.Fatalf("zero edge fill = %v, want [0 0.8 0]", got)
	}
	if _, err := build(GapError); err == nil {
		t.Fatal("ragged coverage accepted under the error edge policy")
	}
}

func TestCollectorRejectsOffGridAndNonConsecutive(t *testing.T) {
	c := NewCollector(CollectConfig{})
	if err := c.Emit(Record{VM: "a", Time: 450, Util: 0.5}); err == nil {
		t.Fatal("off-grid time accepted")
	}
	if err := c.Emit(Record{VM: "a", Time: 0, Util: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Emit(Record{VM: "a", Time: 1800, Util: 0.5}); err == nil {
		t.Fatal("non-consecutive step accepted")
	}
}

func TestCollectorEmptySource(t *testing.T) {
	if _, err := Collect(&sliceSource{}, CollectConfig{}); err == nil {
		t.Fatal("empty source assembled into a trace")
	}
}

func TestAssignSectorDeterministicAndSalted(t *testing.T) {
	if AssignSector(1, "vm-a") != AssignSector(1, "vm-a") {
		t.Fatal("same salt, same VM → different sectors")
	}
	diff := false
	for v := 0; v < 64 && !diff; v++ {
		vm := "vm-" + string(rune('a'+v%26)) + string(rune('0'+v/26))
		diff = AssignSector(1, vm) != AssignSector(2, vm)
	}
	if !diff {
		t.Fatal("salts 1 and 2 agree on 64 VMs — the salt is inert")
	}
}

// --- distortions and replay determinism ---

func fabricatedGrid(t *testing.T, cfg FabConfig) Source {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteGoogleUsage(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	src, err := NewGoogleUsage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(src, GridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func distortedPipeline() []Distortion {
	return []Distortion{
		FlashCrowd{StartStep: 2, Steps: 4, Amplify: 1.8, VMFraction: 0.5},
		BurstInject{Prob: 0.05, MinSteps: 1, MaxSteps: 3, MinLevel: 0.1, MaxLevel: 0.4},
		&TimeWarp{MaxLagSteps: 3},
	}
}

func TestReplaySameSeedByteIdentical(t *testing.T) {
	fab := FabConfig{VMs: 12, Steps: 10, Seed: 7, GapProb: 0.05, EmptyProb: 0.05}
	run := func() ([]Record, ReplayStats) {
		var out []Record
		st, err := Replay(fabricatedGrid(t, fab),
			SinkFunc(func(r Record) error { out = append(out, r); return nil }),
			ReplayConfig{Seed: 42, Distortions: distortedPipeline()})
		if err != nil {
			t.Fatal(err)
		}
		return out, st
	}
	a, sa := run()
	b, sb := run()
	if len(a) != len(b) {
		t.Fatalf("replays differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d: %+v vs %+v — same-seed replay is not byte-identical", i, a[i], b[i])
		}
	}
	if sa.Distorted != sb.Distorted || sa.MassOut != sb.MassOut {
		t.Fatalf("stats diverge: %+v vs %+v", sa, sb)
	}
	if sa.Distorted == 0 {
		t.Fatal("pipeline distorted nothing — the test is vacuous")
	}
}

func TestReplayDifferentSeedDiffers(t *testing.T) {
	fab := FabConfig{VMs: 12, Steps: 10, Seed: 7}
	run := func(seed int64) ReplayStats {
		st, err := Replay(fabricatedGrid(t, fab), SinkFunc(func(Record) error { return nil }),
			ReplayConfig{Seed: seed, Distortions: distortedPipeline()})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if run(1).MassOut == run(2).MassOut {
		t.Fatal("seeds 1 and 2 produced identical distorted mass — the seed is inert")
	}
}

func TestReplaySpeedupPreservesOrderAndContent(t *testing.T) {
	fab := FabConfig{VMs: 4, Steps: 4, Seed: 7}
	run := func(p *Pacer) []Record {
		var out []Record
		_, err := Replay(fabricatedGrid(t, fab),
			SinkFunc(func(r Record) error { out = append(out, r); return nil }),
			ReplayConfig{Seed: 42, Distortions: distortedPipeline(), Pacer: p})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	unpaced := run(nil)
	// 3 inter-step intervals of 900 s at 90000x → ≥ 30 ms of pacing.
	start := time.Now()
	paced := run(NewPacer(90000))
	elapsed := time.Since(start)
	if len(unpaced) != len(paced) {
		t.Fatalf("pacing changed the record count: %d vs %d", len(unpaced), len(paced))
	}
	for i := range unpaced {
		if unpaced[i] != paced[i] {
			t.Fatalf("record %d: pacing changed content: %+v vs %+v", i, unpaced[i], paced[i])
		}
	}
	if elapsed < 25*time.Millisecond {
		t.Fatalf("paced replay finished in %v — the pacer never waited", elapsed)
	}
}

func TestTimeWarpShiftsPhase(t *testing.T) {
	// Find a VM whose hashed lag is nonzero, then check its warped
	// series is the original shifted with the first value held.
	const seed, maxLag = 5, 3
	vm := ""
	lag := 0
	for v := 0; v < 32 && lag == 0; v++ {
		name := "vm-" + string(rune('a'+v))
		if l := int(hashUnit(seed, "time-warp", name, 0) * float64(maxLag+1)); l > 0 {
			vm, lag = name, l
		}
	}
	if lag == 0 {
		t.Fatal("no VM drew a nonzero lag in 32 tries")
	}
	w := &TimeWarp{MaxLagSteps: maxLag}
	orig := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	for k, u := range orig {
		rec, touched := w.Apply(seed, k, Record{VM: vm, Time: float64(k) * 900, Util: u})
		if !touched {
			t.Fatalf("step %d not touched despite lag %d", k, lag)
		}
		want := orig[0]
		if k >= lag {
			want = orig[k-lag]
		}
		if rec.Util != want {
			t.Fatalf("step %d: warped util %v, want %v (lag %d)", k, rec.Util, want, lag)
		}
	}
}

func TestFlashCrowdWindowAndFraction(t *testing.T) {
	f := FlashCrowd{StartStep: 2, Steps: 2, Amplify: 2, VMFraction: 1}
	if _, touched := f.Apply(1, 1, Record{VM: "a", Util: 0.3}); touched {
		t.Fatal("step before the window amplified")
	}
	rec, touched := f.Apply(1, 2, Record{VM: "a", Util: 0.3})
	if !touched || math.Abs(rec.Util-0.6) > 1e-12 {
		t.Fatalf("in-window apply: touched=%v util=%v, want 0.6", touched, rec.Util)
	}
	if _, touched := f.Apply(1, 4, Record{VM: "a", Util: 0.3}); touched {
		t.Fatal("step after the window amplified")
	}
	none := FlashCrowd{StartStep: 0, Steps: 8, Amplify: 2, VMFraction: 1e-12}
	if _, touched := none.Apply(1, 1, Record{VM: "a", Util: 0.3}); touched {
		t.Fatal("VMFraction ~0 still caught a VM")
	}
}

// --- spec ---

func TestParseSpecRejectsUnknownFieldsAndBadKinds(t *testing.T) {
	for name, in := range map[string]string{
		"unknown field":  `{"format":"synthetic","synthetic":{"vms":4},"typo":1}`,
		"unknown format": `{"format":"csv"}`,
		"missing path":   `{"format":"google-usage"}`,
		"bad distortion": `{"format":"synthetic","synthetic":{"vms":4},"distortions":[{"kind":"flash-crowd"}]}`,
		"unknown kind":   `{"format":"synthetic","synthetic":{"vms":4},"distortions":[{"kind":"meteor"}]}`,
		"bad gap":        `{"format":"synthetic","synthetic":{"vms":4},"grid":{"gap":"interpolate"}}`,
		"bad speedup":    `{"format":"synthetic","synthetic":{"vms":4},"speedup":-1}`,
	} {
		if _, err := ParseSpec(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestSpecBuildDeterministicEndToEnd(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "corpus.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteGoogleUsage(f, FabConfig{VMs: 8, Steps: 6, Seed: 3, GapProb: 0.05}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	spec := `{"format":"google-usage","path":"corpus.csv","seed":11,
		"distortions":[{"kind":"flash-crowd","start_step":1,"steps":3,"amplify":1.5,"vm_fraction":0.5},
		               {"kind":"sector-remix","salt":99}]}`
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	build := func() ([]byte, *Provenance) {
		sp, err := LoadSpec(specPath)
		if err != nil {
			t.Fatal(err)
		}
		tr, prov, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), prov
	}
	a, pa := build()
	b, pb := build()
	if !bytes.Equal(a, b) {
		t.Fatal("same spec, same corpus → different trace bytes")
	}
	if pa.Distorted == 0 {
		t.Fatal("provenance reports zero distorted records under a flash crowd")
	}
	if pa.Records != pb.Records || pa.Distorted != pb.Distorted {
		t.Fatalf("provenance diverges: %+v vs %+v", pa, pb)
	}
	// The sector-remix salt overrides the seed-derived assignment.
	sp, err := LoadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.SectorSalt(); got != 99 {
		t.Fatalf("SectorSalt() = %d, want the remix salt 99", got)
	}
}

func TestSpecSyntheticBuild(t *testing.T) {
	sp, err := ParseSpec(strings.NewReader(`{"format":"synthetic","seed":5,"synthetic":{"vms":6,"seed":5}}`))
	if err != nil {
		t.Fatal(err)
	}
	tr, prov, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumVMs() != 6 {
		t.Fatalf("synthetic build: %d VMs, want 6", tr.NumVMs())
	}
	if prov.Records != tr.NumVMs()*tr.NumSteps() {
		t.Fatalf("provenance records %d, want %d", prov.Records, tr.NumVMs()*tr.NumSteps())
	}
}

// --- fabricator ---

func TestFabricatorDeterministic(t *testing.T) {
	gen := func() []byte {
		var buf bytes.Buffer
		if _, err := WriteAzureVM(&buf, FabConfig{VMs: 5, Steps: 6, Seed: 13, GapProb: 0.1, EmptyProb: 0.1}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(gen(), gen()) {
		t.Fatal("same FabConfig produced different corpus bytes")
	}
}

func TestFabricatedCorporaRoundTrip(t *testing.T) {
	fab := FabConfig{VMs: 6, Steps: 8, Seed: 21, GapProb: 0.1, EmptyProb: 0.1}
	var g, a bytes.Buffer
	if _, err := WriteGoogleUsage(&g, fab); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteAzureVM(&a, fab); err != nil {
		t.Fatal(err)
	}
	for name, open := range map[string]func() (Source, error){
		"google": func() (Source, error) { return NewGoogleUsage(bytes.NewReader(g.Bytes())) },
		"azure":  func() (Source, error) { return NewAzureVM(bytes.NewReader(a.Bytes())) },
	} {
		src, err := open()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		grid, err := NewGrid(src, GridConfig{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := Collect(grid, CollectConfig{})
		if err != nil {
			t.Fatalf("%s: collect: %v", name, err)
		}
		if tr.NumVMs() != fab.VMs || tr.NumSteps() != fab.Steps {
			t.Fatalf("%s: trace is %dx%d, want %dx%d", name, tr.NumVMs(), tr.NumSteps(), fab.VMs, fab.Steps)
		}
	}
}

// --- feed ---

func TestFeedAggregatesAndHolds(t *testing.T) {
	recs := []Record{
		{VM: "a", Time: 0, Util: 0.5},
		{VM: "b", Time: 0, Util: 1.0},
		{VM: "a", Time: 900, Util: 0.25},
		{VM: "b", Time: 900, Util: 0.25},
	}
	feed, err := NewFeed(&sliceSource{recs: recs}, FeedConfig{Apps: 1, MaxConcurrency: 40, LagSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	levels, ok := feed.Step()
	if !ok || len(levels) != 1 || levels[0] != 30 { // mean(0.5, 1.0)*40
		t.Fatalf("step 0 levels = %v ok=%v, want [30] true", levels, ok)
	}
	levels, ok = feed.Step()
	if !ok || levels[0] != 10 { // mean(0.25, 0.25)*40
		t.Fatalf("step 1 levels = %v ok=%v, want [10] true", levels, ok)
	}
	if _, ok := feed.Step(); ok {
		t.Fatal("exhausted feed still returned a step")
	}
	if feed.Err() != nil {
		t.Fatalf("clean EOF reported as error: %v", feed.Err())
	}
}

func TestFeedEmptyInteriorStepHoldsAll(t *testing.T) {
	recs := []Record{
		{VM: "a", Time: 0, Util: 0.5},
		{VM: "a", Time: 1800, Util: 0.5}, // step 1 never arrives
	}
	// A slice source skips the grid, so step 1 is simply absent.
	feed, err := NewFeed(&sliceSource{recs: recs}, FeedConfig{Apps: 2, LagSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := feed.Step(); !ok {
		t.Fatal("step 0 missing")
	}
	levels, ok := feed.Step()
	if !ok {
		t.Fatal("interior step missing")
	}
	for i, l := range levels {
		if l != -1 {
			t.Fatalf("empty interior step: app %d level %d, want -1 (hold)", i, l)
		}
	}
}

// --- constant memory ---

// TestIngestConstantMemory streams a million-row fabricated corpus
// through the decoder and the resampler and asserts peak heap growth
// stays under a fixed bound — the package's rule 1. The corpus is
// produced on the fly through a pipe, so neither side ever holds the
// input.
func TestIngestConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row decode; skipped in -short")
	}
	fab := FabConfig{VMs: 2000, Steps: 167, Seed: 31, GapProb: 0.02, EmptyProb: 0.02} // 2000*167*3 ≈ 1.0M rows
	pr, pw := io.Pipe()
	go func() {
		_, err := WriteGoogleUsage(pw, fab)
		pw.CloseWithError(err)
	}()
	src, err := NewGoogleUsage(pr)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewGrid(src, GridConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	const bound = 48 << 20 // 48 MiB: orders of magnitude under the ~60 MB input
	peak := uint64(0)
	n := 0
	_, err = Drain(grid, SinkFunc(func(Record) error {
		n++
		if n%200000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > base && ms.HeapAlloc-base > peak {
				peak = ms.HeapAlloc - base
			}
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	// A VM whose edge step drew only empty fields ends a step short (the
	// collector's edge policy covers it), so allow a tiny deficit.
	if want := fab.VMs * fab.Steps; n > want || n < want-20 {
		t.Fatalf("gridded %d records, want ~%d", n, want)
	}
	if peak > bound {
		t.Fatalf("peak heap growth %d MiB exceeds the %d MiB constant-memory bound", peak>>20, bound>>20)
	}
	t.Logf("decoded %d rows → %d gridded records, peak heap growth %d KiB", fab.Rows(), n, peak>>10)
}
