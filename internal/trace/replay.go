package trace

import (
	"fmt"
	"io"
	"math"
)

// DistortionStat is one pipeline layer's provenance: what ran, with
// which parameters, and how many records it touched.
type DistortionStat struct {
	Name      string `json:"name"`
	Params    string `json:"params,omitempty"`
	Distorted int    `json:"distorted"`
}

// ReplayStats summarizes one replay for provenance and verification:
// record counts, per-distortion touch counts, and the aggregate
// utilization mass before and after the pipeline (the
// replay-conserves-mass law asserts MassIn == MassOut on a
// distortion-free replay).
type ReplayStats struct {
	Records    int              `json:"records"`
	Distorted  int              `json:"distorted"`
	Distortion []DistortionStat `json:"distortions,omitempty"`
	MassIn     float64          `json:"mass_in"`
	MassOut    float64          `json:"mass_out"`
	SimSeconds float64          `json:"sim_seconds"`
}

// ReplayConfig parameterizes one replay.
type ReplayConfig struct {
	// StepSeconds is the grid interval used to derive each record's
	// step index for the distortion hashes (default 900).
	StepSeconds float64
	// Seed drives every distortion draw. Same seed, same source, same
	// pipeline → byte-identical emission.
	Seed int64
	// Distortions run in order on every record.
	Distortions []Distortion
	// Pacer, when non-nil, throttles emission to real time scaled by
	// its speedup — the only wall-clock consumer in the package. Nil
	// replays as fast as the consumer pulls (the only mode tests and
	// simulators use; pacing cannot change what is emitted, only when).
	Pacer *Pacer
}

// Stream is the pull side of the replay engine: a Source whose records
// pass through the distortion pipeline as they are read. The emitted
// stream is a deterministic function of (source, seed, pipeline); the
// pacer affects timing only. A Stream owns its distortion instances
// (TimeWarp holds per-VM state), so build one per replay.
type Stream struct {
	src   Source
	cfg   ReplayConfig
	stats ReplayStats
}

// NewStream wraps src in the distortion pipeline.
func NewStream(src Source, cfg ReplayConfig) *Stream {
	if cfg.StepSeconds <= 0 {
		cfg.StepSeconds = DefaultStepSeconds
	}
	st := &Stream{src: src, cfg: cfg}
	st.stats.Distortion = make([]DistortionStat, len(cfg.Distortions))
	for i, d := range cfg.Distortions {
		st.stats.Distortion[i] = DistortionStat{Name: d.Name(), Params: d.Params()}
	}
	return st
}

// Stats snapshots the replay counters accumulated so far.
func (st *Stream) Stats() ReplayStats {
	out := st.stats
	out.Distortion = append([]DistortionStat(nil), st.stats.Distortion...)
	return out
}

// Next implements Source.
func (st *Stream) Next() (Record, error) {
	rec, err := st.src.Next()
	if err != nil {
		return Record{}, err
	}
	step := int(math.Round(rec.Time / st.cfg.StepSeconds))
	st.stats.Records++
	st.stats.MassIn += rec.Util
	if rec.Time > st.stats.SimSeconds {
		st.stats.SimSeconds = rec.Time
	}
	touched := false
	for i, d := range st.cfg.Distortions {
		out, hit := d.Apply(st.cfg.Seed, step, rec)
		if hit {
			st.stats.Distortion[i].Distorted++
			touched = true
		}
		rec = out
	}
	if touched {
		st.stats.Distorted++
	}
	st.stats.MassOut += rec.Util
	st.cfg.Pacer.Wait(rec.Time)
	return rec, nil
}

// Replay drains src through the distortion pipeline into sink — the
// push form of NewStream + Drain.
func Replay(src Source, sink Sink, cfg ReplayConfig) (ReplayStats, error) {
	st := NewStream(src, cfg)
	for {
		rec, err := st.Next()
		if err == io.EOF {
			return st.Stats(), nil
		}
		if err != nil {
			return st.Stats(), err
		}
		if err := sink.Emit(rec); err != nil {
			return st.Stats(), fmt.Errorf("trace: replay sink: %w", err)
		}
	}
}

// massSink accumulates aggregate utilization; used by verification.
type massSink struct {
	n    int
	mass float64
}

// Emit implements Sink.
func (m *massSink) Emit(r Record) error {
	m.n++
	m.mass += r.Util
	return nil
}
