package trace

import (
	"fmt"
)

// Distortion perturbs the gridded record stream during replay. Apply
// sees one record plus its grid step and returns the (possibly
// rewritten) record and whether it was touched. Implementations draw
// every stochastic choice through hashUnit/hashFold on the replay seed
// — never from shared random state — so a distortion's decisions
// depend only on (seed, vm, step), not on pipeline order or on other
// distortions. Stateful distortions (TimeWarp) hold bounded per-VM
// state and are single-replay instances: build a fresh pipeline per
// Replay call (ReplaySpec.Distortions does).
type Distortion interface {
	// Name is the distortion's stable provenance label.
	Name() string
	// Params renders the configuration for provenance records.
	Params() string
	// Apply transforms one record.
	Apply(seed int64, step int, rec Record) (Record, bool)
}

// FlashCrowd amplifies a hashed fraction of the VM population inside a
// step window — the "breaking news" surge of the paper's Section V,
// projected onto a replayed real trace.
type FlashCrowd struct {
	StartStep  int     // first amplified step
	Steps      int     // window length in steps
	Amplify    float64 // utilization multiplier (>1)
	VMFraction float64 // fraction of VMs caught in the crowd (0,1]
}

// Name implements Distortion.
func (f FlashCrowd) Name() string { return "flash-crowd" }

// Params implements Distortion.
func (f FlashCrowd) Params() string {
	return fmt.Sprintf("start=%d steps=%d amplify=%.2f vm_fraction=%.2f", f.StartStep, f.Steps, f.Amplify, f.VMFraction)
}

// Apply implements Distortion.
func (f FlashCrowd) Apply(seed int64, step int, rec Record) (Record, bool) {
	if step < f.StartStep || step >= f.StartStep+f.Steps {
		return rec, false
	}
	if hashUnit(seed, "flash-crowd", rec.VM, 0) >= f.VMFraction {
		return rec, false
	}
	rec.Util = clamp01(rec.Util * f.Amplify)
	return rec, true
}

// BurstInject layers short random utilization surges onto the stream:
// at every (VM, step), a burst starts with probability Prob, runs for a
// hashed length in [MinSteps, MaxSteps], and adds a hashed level in
// [MinLevel, MaxLevel]. Membership is recomputed by bounded lookback —
// no state — so a record's fate is a pure function of (seed, vm, step).
type BurstInject struct {
	Prob               float64 // per-(VM, step) burst-start probability
	MinSteps, MaxSteps int     // burst duration window (steps)
	MinLevel, MaxLevel float64 // added utilization window
}

// Name implements Distortion.
func (b BurstInject) Name() string { return "burst" }

// Params implements Distortion.
func (b BurstInject) Params() string {
	return fmt.Sprintf("prob=%.4f steps=[%d,%d] level=[%.2f,%.2f]", b.Prob, b.MinSteps, b.MaxSteps, b.MinLevel, b.MaxLevel)
}

// Apply implements Distortion.
func (b BurstInject) Apply(seed int64, step int, rec Record) (Record, bool) {
	if b.Prob <= 0 || b.MaxSteps <= 0 {
		return rec, false
	}
	add := 0.0
	for s := step - b.MaxSteps + 1; s <= step; s++ {
		if s < 0 || hashUnit(seed, "burst-start", rec.VM, s) >= b.Prob {
			continue
		}
		length := b.MinSteps + int(hashUnit(seed, "burst-len", rec.VM, s)*float64(b.MaxSteps-b.MinSteps+1))
		if step-s >= length {
			continue
		}
		level := b.MinLevel + hashUnit(seed, "burst-level", rec.VM, s)*(b.MaxLevel-b.MinLevel)
		if level > add {
			add = level
		}
	}
	if add <= 0 {
		return rec, false
	}
	rec.Util = clamp01(rec.Util + add)
	return rec, true
}

// TimeWarp phase-shifts each VM by a hashed lag in [0, MaxLagSteps]:
// VM v's replayed utilization at step k is its original utilization at
// step k-lag(v) (the first value holds across the leading edge). Peaks
// that coincided in the original trace are scattered — the correlation
// structure the consolidator exploits is deliberately degraded. State
// is one FIFO of at most lag values per VM: bounded, and a pure
// function of the per-VM record sequence.
type TimeWarp struct {
	MaxLagSteps int
	hist        map[string][]float64
}

// Name implements Distortion.
func (w *TimeWarp) Name() string { return "time-warp" }

// Params implements Distortion.
func (w *TimeWarp) Params() string { return fmt.Sprintf("max_lag_steps=%d", w.MaxLagSteps) }

// Apply implements Distortion.
func (w *TimeWarp) Apply(seed int64, step int, rec Record) (Record, bool) {
	if w.MaxLagSteps <= 0 {
		return rec, false
	}
	lag := int(hashUnit(seed, "time-warp", rec.VM, 0) * float64(w.MaxLagSteps+1))
	if lag == 0 {
		return rec, false
	}
	if w.hist == nil {
		w.hist = map[string][]float64{}
	}
	q := append(w.hist[rec.VM], rec.Util)
	out := q[0]
	if len(q) > lag {
		out = q[0]
		copy(q, q[1:])
		q = q[:len(q)-1]
	}
	w.hist[rec.VM] = q
	rec.Util = out
	return rec, true
}

// SectorRemix reassigns the deterministic VM→sector mapping with a new
// salt. Sectors exist only in the assembled workload.Trace, so the
// record stream passes through untouched; ReplaySpec.Collect applies
// the salt when building the trace, and the distortion still appears
// in provenance.
type SectorRemix struct {
	Salt int64
}

// Name implements Distortion.
func (s SectorRemix) Name() string { return "sector-remix" }

// Params implements Distortion.
func (s SectorRemix) Params() string { return fmt.Sprintf("salt=%d", s.Salt) }

// Apply implements Distortion.
func (s SectorRemix) Apply(seed int64, step int, rec Record) (Record, bool) {
	return rec, false
}
