package testbed

import (
	"testing"
)

func TestRunStaticFreezesAllocations(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	before := tb.Apps[0].Allocations()
	recs, err := tb.RunStatic(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := tb.Apps[0].Allocations()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("allocations moved during static run: %v -> %v", before, after)
		}
	}
	if len(recs) != 25 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if r.PowerW <= 0 || len(r.T90) != len(tb.Apps) {
			t.Fatalf("bad record %+v", r)
		}
	}
}

func TestFig3StaticViolatesDuringSurge(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cfg := quickConfig()
	controlled, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Fig3Static(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(res *Fig3Result) float64 {
		viol, n := 0, 0
		for _, p := range res.ResponseTime {
			// Judge the second half of the surge: the controller has
			// had time to react by then; the static system has not.
			if p.Time >= 800 && p.Time < 1200 {
				n++
				if p.Value > cfg.Setpoint*1.5 {
					viol++
				}
			}
		}
		return float64(viol) / float64(n)
	}
	rc, rs := rate(controlled), rate(static)
	if rs <= rc {
		t.Fatalf("static violation rate %.2f not above controlled %.2f", rs, rc)
	}
	if rs < 0.5 {
		t.Fatalf("static system absorbed the surge (%.2f) — scenario too easy", rs)
	}
}

func TestViolationRate(t *testing.T) {
	recs := []PeriodRecord{
		{T90: []float64{0.9}},
		{T90: []float64{1.1}},
		{T90: []float64{1.6}},
		{T90: []float64{2.0}},
	}
	if got := ViolationRate(recs, 0, 1.0, 1.2); got != 0.5 {
		t.Fatalf("ViolationRate = %v, want 0.5", got)
	}
	if got := ViolationRate(nil, 0, 1.0, 1.2); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}
