package testbed

import (
	"bytes"
	"errors"
	"testing"

	"vdcpower/internal/check"
	"vdcpower/internal/devs"
	"vdcpower/internal/fault"
	"vdcpower/internal/guard"
	"vdcpower/internal/obs"
)

// A starvation-level budget must convert the period into a typed abort
// with the partial records preserved — never a hang, never a plain error.
func TestRunStepBudgetAbort(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := obs.New(obs.Config{})
	tb.AttachObs(sc)
	ck := check.New(check.GuardInvariants()...)
	tb.AttachChecker(ck)

	recs, err := tb.Run(40, nil)
	if err != nil {
		t.Fatalf("unbudgeted run failed: %v", err)
	}
	healthy := len(recs)

	tb.SetStepBudget(devs.Budget{MaxEvents: 5})
	recs, err = tb.Run(40, nil)
	sa, ok := guard.AsStepAbort(err)
	if !ok {
		t.Fatalf("err = %v, want *guard.StepAbort", err)
	}
	if sa.Wall {
		t.Fatal("event-budget trip flagged as wall-clock")
	}
	if !errors.Is(err, devs.ErrBudgetExceeded) {
		t.Fatal("abort does not unwrap to the kernel sentinel")
	}
	if len(recs) != 0 {
		t.Fatalf("aborted on period 0 yet returned %d records", len(recs))
	}
	g := sc.Report().Guard
	if g.BudgetTrips != 1 || g.WallTrips != 0 {
		t.Fatalf("guard slice = %+v", g)
	}
	if g.Drains != uint64(healthy)+1 {
		t.Fatalf("Drains = %d, want %d healthy + 1 aborted", g.Drains, healthy)
	}
	// The abort is checker-visible and law-clean: tripped and aborted agree.
	if verr := ck.Err(); verr != nil {
		t.Fatalf("guard law violated: %v", verr)
	}
	// The audit ring carries the stuck-step record.
	found := false
	for _, d := range sc.Audit().Records() {
		if d.Component == "guard" && d.Action == "step-abort" {
			found = true
		}
	}
	if !found {
		t.Fatal("no guard/step-abort audit record")
	}

	// Removing the budget resumes normal operation on the same testbed.
	tb.SetStepBudget(devs.Budget{})
	if _, err := tb.Run(40, nil); err != nil {
		t.Fatalf("run after clearing the budget: %v", err)
	}
}

// Injected exhaustion travels the real kernel trip path and stops at
// until_step, so stepwise runs (serve's cadence) recover on schedule.
func TestRunInjectedBudgetExhaustionRecovers(t *testing.T) {
	cfg := quickConfig()
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := obs.New(obs.Config{})
	tb.AttachObs(sc)
	ck := check.New(check.GuardInvariants()...)
	tb.AttachChecker(ck)
	tb.AttachFaults(fault.New(fault.Profile{Seed: 3, Guard: fault.GuardProfile{ExhaustProb: 1, UntilStep: 2}}))

	aborts := 0
	for p := 0; p < 6; p++ {
		_, err := tb.Run(cfg.Period, nil) // one period per call, like serve
		if p < 2 {
			if !guard.IsStepAbort(err) {
				t.Fatalf("period %d: err = %v, want step abort", p, err)
			}
			aborts++
			continue
		}
		if err != nil {
			t.Fatalf("period %d after until_step: %v", p, err)
		}
	}
	if aborts != 2 {
		t.Fatalf("aborts = %d", aborts)
	}
	if g := sc.Report().Guard; g.BudgetTrips != 2 {
		t.Fatalf("BudgetTrips = %d, want 2", g.BudgetTrips)
	}
	if verr := ck.Err(); verr != nil {
		t.Fatalf("guard law violated under injection: %v", verr)
	}
}

// Acceptance: a generous budget that never trips must leave the run
// byte-identical to an unbudgeted one — records and scorecard alike.
func TestRunByteIdenticalUnderUntrippedBudget(t *testing.T) {
	runOnce := func(budget devs.Budget) ([]PeriodRecord, *bytes.Buffer) {
		tb, err := New(quickConfig())
		if err != nil {
			t.Fatal(err)
		}
		sc := obs.New(obs.Config{})
		tb.AttachObs(sc)
		tb.SetStepBudget(budget)
		recs, err := tb.Run(100, nil)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := sc.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return recs, &b
	}
	plainRecs, plainJSON := runOnce(devs.Budget{})
	budgetedRecs, budgetedJSON := runOnce(guard.DefaultStepBudget().DevsBudget(nil))
	if len(plainRecs) != len(budgetedRecs) {
		t.Fatalf("record counts differ: %d vs %d", len(plainRecs), len(budgetedRecs))
	}
	for i := range plainRecs {
		a, b := plainRecs[i], budgetedRecs[i]
		if a.Time != b.Time || a.PowerW != b.PowerW || a.Relaxed != b.Relaxed {
			t.Fatalf("record %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.T90 {
			if a.T90[j] != b.T90[j] {
				t.Fatalf("record %d T90[%d] diverged", i, j)
			}
		}
	}
	if !bytes.Equal(plainJSON.Bytes(), budgetedJSON.Bytes()) {
		t.Fatal("scorecard JSON diverged under an untripped budget")
	}
}
