package testbed

import (
	"testing"

	"vdcpower/internal/check"
	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
)

// TestAttachCheckerCleanRun drives the full closed loop — identification,
// MPC control, consolidation, arbitration — under the complete invariant
// registry and requires a spotless verdict.
func TestAttachCheckerCleanRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumApps = 2
	cfg.NumServers = 3
	cfg.IdentPeriods = 60
	cfg.IdentWarmupSec = 20
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 5, cluster.DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
	c := check.New(check.All()...)
	tb.AttachChecker(c)
	if c.Events() == 0 {
		t.Fatal("AttachChecker did not record the baseline placement")
	}
	if _, err := tb.Run(20*cfg.Period, nil); err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
	if c.NumViolations() != 0 {
		t.Fatalf("violations on a healthy testbed: %v", c.Violations())
	}
	// Consolidation periods must have produced consolidate events, not
	// just power accounting.
	if len(tb.OptimizerLogs) == 0 {
		t.Fatal("optimizer never ran; the checker saw no consolidate events")
	}
}

// TestAttachCheckerNilDetaches ensures a nil checker is a true detach —
// the loop keeps running without observing events.
func TestAttachCheckerNilDetaches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumApps = 1
	cfg.NumServers = 2
	cfg.IdentPeriods = 60
	cfg.IdentWarmupSec = 20
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := check.New(check.ClusterInvariants()...)
	tb.AttachChecker(c)
	before := c.Events()
	tb.AttachChecker(nil)
	if _, err := tb.Run(3*cfg.Period, nil); err != nil {
		t.Fatal(err)
	}
	if c.Events() != before {
		t.Fatalf("detached checker still observed events: %d -> %d", before, c.Events())
	}
}
