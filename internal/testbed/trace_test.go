package testbed

import (
	"bytes"
	"encoding/json"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/telemetry"
)

// chromeEvent mirrors the fields of one Chrome-trace event the
// assertions need.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestIntegratedTraceCoversBothLevels runs the full two-level system with
// the span recorder attached and asserts the exported Chrome trace holds
// every layer's span kinds: MPC solves, arbitrator passes, the Minimum
// Slack branch-and-bound (with its explored node count), IPAC rounds, and
// live migrations.
func TestIntegratedTraceCoversBothLevels(t *testing.T) {
	cfg := quickConfig()
	cfg.NumApps = 4
	cfg.NumServers = 3
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 10, cluster.DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := tb.AttachTelemetry(0, reg)
	if _, err := tb.Run(200, nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	byName := map[string]int{}
	for _, e := range evs {
		byName[e.Name]++
	}
	for _, want := range []string{
		"testbed.period", "core.step", "core.measure", "core.actuate",
		"mpc.solve", "mpc.model_update", "mpc.qp",
		"arbitrator.pass",
		"ipac.consolidate", "ipac.round", "optimizer.pac", "packing.minslack",
		"cluster.migrate",
	} {
		if byName[want] == 0 {
			t.Errorf("trace lacks %q spans (have %v)", want, byName)
		}
	}
	for _, e := range evs {
		if e.Name == "packing.minslack" {
			if _, ok := e.Args["nodes"]; !ok {
				t.Errorf("packing.minslack span lacks the nodes attribute: %v", e.Args)
			}
		}
	}

	// The registry saw both levels too: application-level control
	// counters and histograms plus data-center-level optimizer counters.
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		"vdcpower_control_periods_total",
		"vdcpower_optimizer_passes_total{policy=\"IPAC\"}",
		"vdcpower_migrations_total",
		"vdcpower_bnb_nodes_total",
		"vdcpower_t90_seconds_bucket",
	} {
		if !bytes.Contains(prom.Bytes(), []byte(m)) {
			t.Errorf("exposition lacks %s:\n%s", m, prom.String())
		}
	}
}
