package testbed

import (
	"testing"

	"vdcpower/internal/check"
	"vdcpower/internal/cluster"
	"vdcpower/internal/fault"
	"vdcpower/internal/optimizer"
)

// TestFaultedRunStaysClean drives the full closed loop with every fault
// class injecting at smoke rates, under the complete law registry —
// including the two degradation laws — and requires a spotless verdict.
func TestFaultedRunStaysClean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumApps = 2
	cfg.NumServers = 3
	cfg.IdentPeriods = 60
	cfg.IdentWarmupSec = 20
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 5, cluster.DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Profile{
		Seed:      9,
		Sensor:    fault.SensorProfile{DropoutProb: 0.2, OutlierProb: 0.05, StuckProb: 0.05},
		DVFS:      fault.DVFSProfile{FailProb: 0.1},
		Migration: fault.MigrationProfile{AbortProb: 0.5, MaxRetries: 2},
		Optimizer: fault.OptimizerProfile{ErrorProb: 0.2},
	})
	tb.AttachFaults(inj)
	c := check.New(check.All()...)
	tb.AttachChecker(c)
	if _, err := tb.Run(25*cfg.Period, nil); err != nil {
		t.Fatalf("faulted run aborted: %v", err)
	}
	if c.NumViolations() != 0 {
		t.Fatalf("faulted run broke invariants: %v", c.Violations())
	}
	if inj.Injected() == 0 {
		t.Fatal("fault plane injected nothing at smoke rates")
	}
	if inj.InjectedByKind()[fault.SensorDropout] == 0 {
		t.Fatal("no sensor dropouts over 25 periods at p=0.2")
	}
}

// TestTotalDropoutGoesOpenLoop starves every controller of measurements and
// checks the degradation ladder end to end: the hold window rides out the
// first dropouts, then the controllers go open-loop — all under the
// hold-window staleness law, which would flag any early or late transition.
func TestTotalDropoutGoesOpenLoop(t *testing.T) {
	cfg := quickConfig()
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Profile{
		Seed:   4,
		Sensor: fault.SensorProfile{DropoutProb: 1},
	})
	tb.AttachFaults(inj)
	c := check.New(check.FaultInvariants()...)
	tb.AttachChecker(c)
	recs, err := tb.Run(8*cfg.Period, nil)
	if err != nil {
		t.Fatalf("starved run aborted: %v", err)
	}
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	if c.NumViolations() != 0 {
		t.Fatalf("degradation ladder broke the staleness law: %v", c.Violations())
	}
	// 8 periods > the default hold window of 4: every controller must have
	// crossed into open-loop by now.
	for i, ctl := range tb.Controllers {
		if ctl.HoldWindow() >= 8 {
			t.Fatalf("controller %d hold window %d makes the test vacuous", i, ctl.HoldWindow())
		}
	}
	if inj.InjectedByKind()[fault.SensorDropout] < 8*len(tb.Controllers) {
		t.Fatalf("dropouts = %d, want every read dropped", inj.InjectedByKind()[fault.SensorDropout])
	}
}
