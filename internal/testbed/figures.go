package testbed

import (
	"fmt"

	"vdcpower/internal/stats"
)

// Defaults for the measurement windows, in seconds. Settle discards the
// transient; Measure is the averaging window.
const (
	DefaultSettleSec  = 200
	DefaultMeasureSec = 400
)

// AppStat is one bar of Fig. 2 / one point of Figs. 4–5: the mean and
// standard deviation of an application's per-period 90-percentile
// response time.
type AppStat struct {
	Label string
	Mean  float64
	Std   float64
}

// Fig2 reproduces Figure 2: the response time of all applications under
// the 1000 ms set point, reported as mean ± std per application.
func Fig2(cfg Config) ([]AppStat, error) {
	tb, err := New(cfg)
	if err != nil {
		return nil, err
	}
	settle := int(DefaultSettleSec / cfg.Period)
	recs, err := tb.Run(DefaultSettleSec+DefaultMeasureSec, nil)
	if err != nil {
		return nil, err
	}
	out := make([]AppStat, len(tb.Apps))
	for i := range tb.Apps {
		var xs []float64
		for _, r := range recs[settle:] {
			xs = append(xs, r.T90[i])
		}
		out[i] = AppStat{Label: tb.Apps[i].Name, Mean: stats.Mean(xs), Std: stats.StdDev(xs)}
	}
	return out, nil
}

// SeriesPoint is one sample of a time series (Figs. 3a and 3b).
type SeriesPoint struct {
	Time  float64
	Value float64
}

// Fig3Result carries the two panels of Figure 3: the stressed
// application's response time and the cluster power, under a workload
// step (concurrency 40→80) between StepStart and StepEnd.
type Fig3Result struct {
	AppLabel           string
	StepStart, StepEnd float64
	ResponseTime       []SeriesPoint // Fig. 3(a)
	Power              []SeriesPoint // Fig. 3(b)
}

// Fig3 reproduces Figure 3: a typical run with a workload surge on App5
// from t=600 s to t=1200 s.
func Fig3(cfg Config) (*Fig3Result, error) {
	tb, err := New(cfg)
	if err != nil {
		return nil, err
	}
	appIdx := 4 // App5, as in the paper
	if appIdx >= len(tb.Apps) {
		appIdx = len(tb.Apps) - 1
	}
	const stepStart, stepEnd, total = 600.0, 1200.0, 1800.0
	app := tb.Apps[appIdx]
	base := cfg.Concurrency
	recs, err := tb.Run(total, func(_ int, now float64) {
		switch {
		case now >= stepStart && now < stepEnd && app.Concurrency() == base:
			app.SetConcurrency(2 * base)
		case now >= stepEnd && app.Concurrency() != base:
			app.SetConcurrency(base)
		}
	})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{AppLabel: app.Name, StepStart: stepStart, StepEnd: stepEnd}
	for _, r := range recs {
		res.ResponseTime = append(res.ResponseTime, SeriesPoint{Time: r.Time, Value: r.T90[appIdx]})
		res.Power = append(res.Power, SeriesPoint{Time: r.Time, Value: r.PowerW})
	}
	return res, nil
}

// Fig4 reproduces Figure 4: App5's achieved response time when its
// concurrency level varies across levels while the controller keeps the
// model identified at the default concurrency — the robustness
// experiment.
func Fig4(cfg Config, levels []int) ([]AppStat, error) {
	out := make([]AppStat, 0, len(levels))
	for _, lvl := range levels {
		tb, err := New(cfg)
		if err != nil {
			return nil, err
		}
		appIdx := 4
		if appIdx >= len(tb.Apps) {
			appIdx = len(tb.Apps) - 1
		}
		tb.Apps[appIdx].SetConcurrency(lvl)
		settle := int(DefaultSettleSec / cfg.Period)
		recs, err := tb.Run(DefaultSettleSec+DefaultMeasureSec, nil)
		if err != nil {
			return nil, err
		}
		var xs []float64
		for _, r := range recs[settle:] {
			xs = append(xs, r.T90[appIdx])
		}
		out = append(out, AppStat{
			Label: fmt.Sprintf("concurrency=%d", lvl),
			Mean:  stats.Mean(xs),
			Std:   stats.StdDev(xs),
		})
	}
	return out, nil
}

// Fig5 reproduces Figure 5: App5's achieved response time as its set
// point sweeps setpoints (seconds) while other applications stay at the
// default.
func Fig5(cfg Config, setpoints []float64) ([]AppStat, error) {
	out := make([]AppStat, 0, len(setpoints))
	for _, sp := range setpoints {
		tb, err := New(cfg)
		if err != nil {
			return nil, err
		}
		appIdx := 4
		if appIdx >= len(tb.Apps) {
			appIdx = len(tb.Apps) - 1
		}
		tb.Controllers[appIdx].SetSetpoint(sp)
		settle := int(DefaultSettleSec / cfg.Period)
		recs, err := tb.Run(DefaultSettleSec+DefaultMeasureSec, nil)
		if err != nil {
			return nil, err
		}
		var xs []float64
		for _, r := range recs[settle:] {
			xs = append(xs, r.T90[appIdx])
		}
		out = append(out, AppStat{
			Label: fmt.Sprintf("setpoint=%.0fms", sp*1000),
			Mean:  stats.Mean(xs),
			Std:   stats.StdDev(xs),
		})
	}
	return out, nil
}
