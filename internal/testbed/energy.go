package testbed

import "vdcpower/internal/cluster"

// Per-application energy attribution: each active server's power draw is
// attributed to the applications hosted on it in proportion to their
// VMs' CPU demands — the chargeback model a provider would bill with,
// and the measurement behind "saving power by right-sizing each
// application" claims.

// attributeEnergy charges one control period's power to applications.
func (tb *Testbed) attributeEnergy(periodSec float64) {
	if tb.appEnergyWh == nil {
		tb.appEnergyWh = make([]float64, len(tb.Apps))
	}
	for _, srv := range tb.DC.Servers {
		if srv.State() != cluster.Active {
			continue
		}
		total := srv.TotalDemand()
		if total <= 0 {
			continue
		}
		p := srv.Power()
		for _, vm := range srv.VMs() {
			idx, ok := tb.vmIndex[vm.ID]
			if !ok {
				continue
			}
			share := vm.Demand / total
			tb.appEnergyWh[idx[0]] += p * share * periodSec / 3600
		}
	}
}

// EnergyByAppWh returns the accumulated energy attribution in watt-hours
// per application name. Idle power of empty or sleeping servers is not
// attributed (nobody to bill).
func (tb *Testbed) EnergyByAppWh() map[string]float64 {
	out := make(map[string]float64, len(tb.Apps))
	for i, app := range tb.Apps {
		v := 0.0
		if i < len(tb.appEnergyWh) {
			v = tb.appEnergyWh[i]
		}
		out[app.Name] = v
	}
	return out
}
