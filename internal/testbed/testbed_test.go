package testbed

import (
	"math"
	"testing"

	"vdcpower/internal/stats"
)

// quickConfig shrinks the testbed so unit tests stay fast while keeping
// the paper's structure (multi-app, two tiers, shared model).
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.NumApps = 3
	cfg.NumServers = 2
	cfg.IdentPeriods = 80
	cfg.IdentWarmupSec = 20
	return cfg
}

func TestNewBuildsTestbed(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Apps) != 3 || len(tb.Controllers) != 3 {
		t.Fatalf("apps=%d controllers=%d", len(tb.Apps), len(tb.Controllers))
	}
	if len(tb.DC.Servers) != 2 {
		t.Fatalf("servers=%d", len(tb.DC.Servers))
	}
	// 3 apps × 2 tiers = 6 VMs placed.
	if got := len(tb.DC.VMs()); got != 6 {
		t.Fatalf("VMs=%d", got)
	}
	if err := tb.DC.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := quickConfig()
	cfg.NumServers = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("0 servers accepted")
	}
	cfg = quickConfig()
	cfg.NumApps = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("0 apps accepted")
	}
}

func TestIdentifiedModelIsCredible(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Model.Na != 1 || tb.Model.Nb != 2 || tb.Model.NumInputs != 2 {
		t.Fatalf("model orders wrong: %+v", tb.Model)
	}
	// More CPU must lower the response time: negative DC gains.
	for i := 0; i < 2; i++ {
		if g := tb.Model.DCGain(i); g >= 0 {
			t.Fatalf("DC gain %d = %v, want negative", i, g)
		}
	}
	if !tb.Model.Stable() {
		t.Fatal("identified model unstable")
	}
	if tb.Fit.R2 < 0.3 {
		t.Fatalf("identification fit too poor: R2=%v", tb.Fit.R2)
	}
}

func TestRunProducesRecords(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tb.Run(80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 { // 80s / 4s
		t.Fatalf("records=%d", len(recs))
	}
	for _, r := range recs {
		if len(r.T90) != 3 {
			t.Fatalf("T90 width %d", len(r.T90))
		}
		if r.PowerW <= 0 {
			t.Fatalf("power %v", r.PowerW)
		}
	}
}

func TestRunHookFires(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if _, err := tb.Run(40, func(int, float64) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("hook calls=%d", calls)
	}
}

func TestControlConvergesToSetpoint(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tb.Run(600, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Average the last 100 s of each app's T90.
	tail := recs[len(recs)-25:]
	for i := range tb.Apps {
		var xs []float64
		for _, r := range tail {
			xs = append(xs, r.T90[i])
		}
		m := stats.Mean(xs)
		if math.Abs(m-1.0) > 0.35 {
			t.Fatalf("app %d settled at %v, want ≈1.0", i, m)
		}
	}
}

func TestDVFSSavesPowerAtLowLoad(t *testing.T) {
	// After convergence the controllers need far less than CMax; DVFS
	// should hold the cluster well under max power.
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tb.Run(400, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxPower := 0.0
	for _, s := range tb.DC.Servers {
		maxPower += s.Spec.MaxPower()
	}
	final := recs[len(recs)-1].PowerW
	if final >= maxPower*0.95 {
		t.Fatalf("no DVFS saving: %v of %v", final, maxPower)
	}
}

func TestFig2AllAppsNearSetpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cfg := quickConfig()
	rows, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cfg.NumApps {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Mean-cfg.Setpoint) > 0.4 {
			t.Fatalf("%s mean %v too far from set point", r.Label, r.Mean)
		}
		if r.Std < 0 {
			t.Fatalf("%s negative std", r.Label)
		}
	}
}

func TestFig3StepRaisesPowerAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cfg := quickConfig()
	res, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ResponseTime) == 0 || len(res.Power) != len(res.ResponseTime) {
		t.Fatal("empty series")
	}
	window := func(series []SeriesPoint, lo, hi float64) []float64 {
		var xs []float64
		for _, p := range series {
			if p.Time >= lo && p.Time < hi {
				xs = append(xs, p.Value)
			}
		}
		return xs
	}
	// Power rises during the surge (more CPU allocated).
	before := stats.Mean(window(res.Power, 400, 600))
	during := stats.Mean(window(res.Power, 800, 1200))
	if during <= before {
		t.Fatalf("power did not rise during surge: %v -> %v", before, during)
	}
	// Response time recovers to the set point during the surge's second
	// half (the controller has re-allocated by then).
	late := stats.Mean(window(res.ResponseTime, 900, 1200))
	if math.Abs(late-cfg.Setpoint) > 0.5 {
		t.Fatalf("surge not absorbed: late T90 %v", late)
	}
}

func TestFig4TracksAcrossConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cfg := quickConfig()
	rows, err := Fig4(cfg, []int{30, 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.Mean-cfg.Setpoint) > 0.4 {
			t.Fatalf("%s: mean %v off set point", r.Label, r.Mean)
		}
	}
}

func TestFig5TracksAcrossSetpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cfg := quickConfig()
	sps := []float64{0.7, 1.2}
	rows, err := Fig5(cfg, sps)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if math.Abs(r.Mean-sps[i]) > 0.4 {
			t.Fatalf("%s: mean %v off target %v", r.Label, r.Mean, sps[i])
		}
	}
	// Achieved times must increase with the set point.
	if rows[1].Mean <= rows[0].Mean {
		t.Fatalf("set point sweep not monotone: %v vs %v", rows[0].Mean, rows[1].Mean)
	}
}
