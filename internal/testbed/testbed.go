// Package testbed reproduces the hardware-testbed experiments of Section
// VII-A on the simulated substrate: a small data center of four servers
// hosting eight two-tier RUBBoS-like applications (16 VMs), each under a
// MIMO response time controller, with server-level arbitrators applying
// DVFS. System identification runs first, exactly as in Section IV-B, and
// the identified model is shared by all applications (they run the same
// software stack).
package testbed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"vdcpower/internal/appsim"
	"vdcpower/internal/check"
	"vdcpower/internal/cluster"
	"vdcpower/internal/core"
	"vdcpower/internal/devs"
	"vdcpower/internal/fault"
	"vdcpower/internal/guard"
	"vdcpower/internal/mat"
	"vdcpower/internal/mpc"
	"vdcpower/internal/obs"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
	"vdcpower/internal/power"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
	"vdcpower/internal/telemetry"
)

// Config sizes the testbed. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	NumServers  int     // physical servers (paper: 4)
	NumApps     int     // two-tier applications (paper: 8)
	Concurrency int     // clients per application (paper: 40)
	Setpoint    float64 // response time target in seconds (paper: 1.0)
	Period      float64 // control period T in seconds
	Seed        int64

	// Identification experiment length, in control periods.
	IdentWarmupSec float64
	IdentPeriods   int

	// Per-VM allocation bounds for the controllers.
	CMin, CMax float64

	// Tiers optionally overrides the application profile. Nil selects
	// the two-tier RUBBoS-like default (web + database).
	Tiers []appsim.TierConfig
}

// DefaultConfig mirrors Section VI-A / VII-A.
func DefaultConfig() Config {
	return Config{
		NumServers:     4,
		NumApps:        8,
		Concurrency:    40,
		Setpoint:       1.0,
		Period:         4.0,
		Seed:           1,
		IdentWarmupSec: 40,
		IdentPeriods:   100,
		CMin:           0.1,
		CMax:           2.5,
	}
}

// appTiers returns the RUBBoS-like two-tier profile: an Apache/PHP web
// tier and a heavier MySQL tier.
func appTiers() []appsim.TierConfig {
	return []appsim.TierConfig{
		{DemandMean: 0.025, DemandCV: 1.0, InitialAllocation: 0.8},
		{DemandMean: 0.040, DemandCV: 1.0, InitialAllocation: 0.8},
	}
}

// Testbed is one instantiated experiment environment.
type Testbed struct {
	Cfg         Config
	Sim         *devs.Simulator
	Apps        []*appsim.App
	Controllers []*core.ResponseTimeController
	DC          *cluster.DataCenter
	Arbitrators []*core.Arbitrator
	Model       *sysid.Model
	Fit         sysid.FitMetrics

	vms     [][]*cluster.VM   // [app][tier]
	vmIndex map[string][2]int // VM ID → (app, tier)

	// Data-center level (optional): a consolidator invoked during Run,
	// with live-migration downtime applied to the affected tiers.
	cons          optimizer.Consolidator
	consEvery     int // periods between invocations
	migModel      cluster.MigrationModel
	OptimizerLogs []optimizer.Report

	appEnergyWh []float64 // per-app attributed energy (see energy.go)

	checker  *check.Checker
	checkedJ float64 // cumulative energy reported to the checker

	tracer  *telemetry.Tracer
	metrics *telemetry.Registry

	faults      *fault.Injector
	periodCount int // control periods executed across every Run call

	// stepBudget bounds each control period's event drain (SetStepBudget).
	// The zero budget imposes no bound, preserving the unguarded behavior
	// byte for byte.
	stepBudget devs.Budget

	obs          *obs.Scorecard // optional health scorecard (AttachObs)
	obsApps      []int          // scorecard app index per application
	prevOpenLoop []bool         // per controller, for audit transition records
}

// New builds the testbed, runs the identification experiment on the first
// application, fits the shared ARX(1,2) model, and attaches a response
// time controller to every application.
func New(cfg Config) (*Testbed, error) {
	if cfg.NumServers < 1 || cfg.NumApps < 1 {
		return nil, fmt.Errorf("testbed: need at least one server and app, got %d/%d", cfg.NumServers, cfg.NumApps)
	}
	tb := &Testbed{Cfg: cfg, Sim: devs.NewSimulator()}

	var servers []*cluster.Server
	for i := 0; i < cfg.NumServers; i++ {
		servers = append(servers, cluster.NewServer(fmt.Sprintf("S%d", i+1), power.TypeHighEnd()))
	}
	dc, err := cluster.NewDataCenter(servers)
	if err != nil {
		return nil, err
	}
	tb.DC = dc
	for _, s := range servers {
		tb.Arbitrators = append(tb.Arbitrators, &core.Arbitrator{Server: s, Headroom: 0.1})
	}

	// Applications and their VMs, placed round-robin over the servers.
	tiers := cfg.Tiers
	if len(tiers) == 0 {
		tiers = appTiers()
	}
	tb.vmIndex = make(map[string][2]int)
	slot := 0
	for i := 0; i < cfg.NumApps; i++ {
		app := appsim.New(tb.Sim, appsim.Config{
			Name:        fmt.Sprintf("App%d", i+1),
			Tiers:       append([]appsim.TierConfig(nil), tiers...),
			Concurrency: cfg.Concurrency,
			ThinkTime:   1.0,
			Seed:        cfg.Seed + int64(i)*977,
		})
		tb.Apps = append(tb.Apps, app)
		tiers := make([]*cluster.VM, app.NumTiers())
		for j := range tiers {
			vm := &cluster.VM{
				ID:       fmt.Sprintf("app%d-tier%d", i+1, j+1),
				App:      app.Name,
				Tier:     j,
				Demand:   app.Allocation(j),
				MemoryGB: 2,
			}
			if err := dc.Place(vm, servers[slot%len(servers)]); err != nil {
				return nil, err
			}
			tiers[j] = vm
			tb.vmIndex[vm.ID] = [2]int{i, j}
			slot++
		}
		tb.vms = append(tb.vms, tiers)
		app.Start()
	}

	if err := tb.identify(); err != nil {
		return nil, err
	}

	for _, app := range tb.Apps {
		ctlCfg := core.DefaultControllerConfig(tb.Model, cfg.Setpoint)
		ctlCfg.SensorID = app.Name // scope fault-plane sensor decisions per app
		for i := range ctlCfg.CMin {
			ctlCfg.CMin[i] = cfg.CMin
			ctlCfg.CMax[i] = cfg.CMax
		}
		ctl, err := core.NewResponseTimeController(app, ctlCfg)
		if err != nil {
			return nil, err
		}
		tb.Controllers = append(tb.Controllers, ctl)
	}
	return tb, nil
}

// identify runs the Section IV-B identification experiment on App1 and
// fits the shared model.
func (tb *Testbed) identify() error {
	cfg := tb.Cfg
	app := tb.Apps[0]
	rng := rand.New(rand.NewSource(cfg.Seed + 10007))
	tb.Sim.RunUntil(tb.Sim.Now() + cfg.IdentWarmupSec)
	app.DrainResponseTimes()
	nTiers := app.NumTiers()
	ds := &sysid.Dataset{}
	for k := 0; k < cfg.IdentPeriods; k++ {
		c := make(mat.Vec, nTiers)
		for j := range c {
			c[j] = cfg.CMin + (cfg.CMax-cfg.CMin)*(0.15+0.7*rng.Float64())
		}
		t90 := stats.Percentile(app.DrainResponseTimes(), 90)
		if math.IsNaN(t90) {
			t90 = 0
		}
		ds.Append(t90, c)
		for j := range c {
			app.SetAllocation(j, c[j])
		}
		tb.Sim.RunUntil(tb.Sim.Now() + cfg.Period)
	}
	model, err := sysid.Identify(ds, 1, 2, nTiers)
	if err != nil {
		return fmt.Errorf("testbed: identification failed: %w", err)
	}
	fit, err := sysid.Evaluate(model, ds)
	if err != nil {
		return fmt.Errorf("testbed: model evaluation failed: %w", err)
	}
	tb.Model = model
	tb.Fit = fit
	// Restore a neutral operating point before control starts.
	tiers := cfg.Tiers
	if len(tiers) == 0 {
		tiers = appTiers()
	}
	for _, a := range tb.Apps {
		for j := range tiers {
			a.SetAllocation(j, tiers[j].InitialAllocation)
		}
		a.DrainResponseTimes()
	}
	return nil
}

// AttachOptimizer enables the data-center level of Figure 1 during Run:
// cons is invoked every everyPeriods control periods, and each performed
// migration pauses the affected application tier for the stop-and-copy
// downtime given by the migration model.
func (tb *Testbed) AttachOptimizer(cons optimizer.Consolidator, everyPeriods int, model cluster.MigrationModel) error {
	if cons == nil {
		return fmt.Errorf("testbed: nil consolidator")
	}
	if everyPeriods < 1 {
		return fmt.Errorf("testbed: invocation interval %d must be >= 1", everyPeriods)
	}
	if err := model.Validate(); err != nil {
		return err
	}
	tb.cons = cons
	tb.consEvery = everyPeriods
	tb.migModel = model
	if tb.tracer != nil {
		if t, ok := cons.(telemetry.Traceable); ok {
			t.SetTrace(tb.tracer.Track("optimizer"))
		}
	}
	if tb.faults != nil {
		if f, ok := cons.(fault.Injectable); ok {
			f.SetFaults(tb.faults)
		}
	}
	return nil
}

// AttachFaults wires the deterministic fault plane through every layer of
// the testbed: controllers read their response-time sensor through the
// injector (keyed by app name), arbitrators consult DVFS actuation
// failures, and an attached consolidator injects migration aborts and
// transient pass errors. Run advances the injector's step cursor once per
// control period, counted across every Run call, so serve's
// one-period-at-a-time stepping keeps the same fault schedule as one long
// run. Nil detaches.
func (tb *Testbed) AttachFaults(inj *fault.Injector) {
	tb.faults = inj
	for _, ctl := range tb.Controllers {
		ctl.SetFaults(inj)
	}
	for _, arb := range tb.Arbitrators {
		arb.Faults = inj
	}
	if f, ok := tb.cons.(fault.Injectable); ok {
		f.SetFaults(inj)
	}
	inj.AttachMetrics(tb.metrics)
}

// SetStepBudget bounds every subsequent control period's event drain.
// When a bound trips, Run returns the periods completed so far plus a
// *guard.StepAbort instead of spinning (ROADMAP item 6's wedge becomes a
// failed step the circuit breaker can react to). The zero budget removes
// every bound. The budget's Interrupt callback, if any, must not touch
// the simulation — it is the wall-clock watchdog's only way in, and the
// testbed itself never reads a real clock.
func (tb *Testbed) SetStepBudget(b devs.Budget) { tb.stepBudget = b }

// AttachTelemetry wires span tracing and metrics into the testbed. It
// builds a tracer on the simulator clock — spans carry logical sim-time,
// so same-seed runs trace identically and the determinism analyzer
// stays green — and gives each controller its own "mpc-<app>" track,
// the arbitrators a shared "arbitrate" track, and the data center plus
// any attached consolidator an "optimizer" track. Per-period counters
// and histograms publish into reg (nil disables metrics). capacity <= 0
// selects the default track capacity. The returned tracer is the export
// handle (Snapshot → telemetry.WriteChromeTrace).
func (tb *Testbed) AttachTelemetry(capacity int, reg *telemetry.Registry) *telemetry.Tracer {
	tr := telemetry.New(tb.Sim.Now, capacity)
	tb.tracer = tr
	tb.metrics = reg
	for i, ctl := range tb.Controllers {
		ctl.SetTrace(tr.Track("mpc-" + tb.Apps[i].Name))
	}
	atk := tr.Track("arbitrate")
	for _, arb := range tb.Arbitrators {
		arb.Trace = atk
	}
	otk := tr.Track("optimizer")
	tb.DC.SetTrace(otk)
	if t, ok := tb.cons.(telemetry.Traceable); ok {
		t.SetTrace(otk)
	}
	tb.faults.AttachMetrics(reg)
	return tr
}

// searchStats reads the consolidator's accumulated B&B node and
// widening counts via the optional SearchStats accessor (0 when
// unavailable).
func searchStats(c optimizer.Consolidator) (nodes, widenings int) {
	if s, ok := c.(interface{ SearchStats() *packing.SearchStats }); ok {
		if st := s.SearchStats(); st != nil {
			return st.Nodes, st.Widenings
		}
	}
	return 0, 0
}

// AttachObs wires a controller-health scorecard through the testbed:
// every application is registered against the run's set point, each
// control period records measurement-plane flags, prediction residuals,
// response times, power, and the aggregated MPC solve tallies, and the
// consolidation layer reports its passes and B&B effort. Open-loop
// transitions land in the scorecard's decision audit ring. Nil detaches.
func (tb *Testbed) AttachObs(sc *obs.Scorecard) {
	tb.obs = sc
	tb.obsApps = tb.obsApps[:0]
	tb.prevOpenLoop = make([]bool, len(tb.Controllers))
	if sc == nil {
		return
	}
	for _, app := range tb.Apps {
		tb.obsApps = append(tb.obsApps, sc.RegisterApp(app.Name, tb.Cfg.Setpoint))
	}
}

// AttachChecker makes the testbed report its run to the invariant checker
// (package check): the current placement as the baseline, every
// consolidator pass, and every control period's power accounting. Run
// returns the checker's verdict as an error after the control loop. Nil
// detaches.
func (tb *Testbed) AttachChecker(c *check.Checker) {
	tb.checker = c
	tb.checkedJ = 0
	if c != nil {
		c.Observe(check.Event{Kind: check.EvInit, Step: -1, DC: tb.DC})
	}
}

// tierOf maps a VM back to its (application, tier) indices.
func (tb *Testbed) tierOf(vm *cluster.VM) (int, int, bool) {
	idx, ok := tb.vmIndex[vm.ID]
	return idx[0], idx[1], ok
}

// consolidate runs one optimizer invocation and applies migration
// downtime to the moved tiers.
func (tb *Testbed) consolidate(period int) error {
	overloaded := 0
	if tb.checker != nil {
		overloaded = check.CountOverloaded(tb.DC)
	}
	nodesBefore, widsBefore := searchStats(tb.cons)
	rep, err := tb.cons.Consolidate(tb.DC)
	if err != nil && !fault.IsInjected(err) {
		return err
	}
	// An injected transient error still logs its (empty) report and fault
	// records below, then surfaces to Run, which skips the pass.
	nodesAfter, widsAfter := searchStats(tb.cons)
	tb.metrics.Counter("vdcpower_optimizer_passes_total", "consolidator invocations",
		telemetry.Label{Key: "policy", Value: tb.cons.Name()}).Inc()
	tb.metrics.Counter("vdcpower_migrations_total", "VM live migrations committed by the consolidation layer").Add(float64(rep.Migrations))
	tb.metrics.Counter("vdcpower_migration_vetoes_total", "migrations rejected by the cost policy").Add(float64(rep.Vetoed))
	tb.metrics.Counter("vdcpower_bnb_nodes_total", "Minimum Slack branch-and-bound nodes expanded").Add(float64(nodesAfter - nodesBefore))
	tb.obs.AddOptimizerPass(rep.Migrations, rep.Vetoed, rep.FailedMoves, rep.Unresolved, fault.IsInjected(err))
	tb.obs.AddSearch(nodesAfter-nodesBefore, widsAfter-widsBefore)
	if tb.obs != nil && rep.ActiveAfter != rep.ActiveBefore {
		action, reason := "servers-off", "consolidation packed the load onto fewer servers"
		if rep.ActiveAfter > rep.ActiveBefore {
			action, reason = "servers-on", "consolidation spread load to relieve overload"
		}
		tb.obs.Audit().Record(obs.Decision{
			Step: period, TimeSec: tb.Sim.Now(),
			Component: tb.cons.Name(), Action: action, Reason: reason,
			Value: float64(rep.ActiveAfter - rep.ActiveBefore), Span: "optimizer",
		})
	}
	for _, mv := range rep.Moves {
		if i, j, ok := tb.tierOf(mv.VM); ok {
			tb.Apps[i].PauseTier(j, tb.migModel.Downtime(mv.VM.MemoryGB))
		}
	}
	tb.OptimizerLogs = append(tb.OptimizerLogs, rep)
	if tb.checker != nil {
		tb.checker.Observe(check.Event{
			Kind:             check.EvConsolidate,
			Step:             period,
			DC:               tb.DC,
			Report:           &rep,
			Policy:           tb.cons.Name(),
			OverloadedBefore: overloaded,
		})
	}
	return err
}

// PeriodRecord captures one control period of one run.
type PeriodRecord struct {
	Time    float64
	T90     []float64 // per application, seconds
	PowerW  float64   // total cluster power
	Relaxed int       // controllers that relaxed the terminal constraint
}

// Run executes the control loop for the given duration (seconds) and
// returns one record per control period. Times are relative to the start
// of the loop (the identification phase consumed simulator time already).
// The optional hook runs at the start of every period (workload steps,
// set point changes) and receives the relative time.
func (tb *Testbed) Run(duration float64, hook func(period int, now float64)) ([]PeriodRecord, error) {
	periods := int(duration / tb.Cfg.Period)
	records := make([]PeriodRecord, 0, periods)
	// Telemetry instruments resolve once, before the loop; on a detached
	// testbed they are nil and every use below no-ops.
	tk := tb.tracer.Track("testbed")
	var (
		mPeriods = tb.metrics.Counter("vdcpower_control_periods_total", "MPC control periods executed (one per application per period)")
		mRelax   = tb.metrics.Counter("vdcpower_terminal_relaxations_total", "control periods where the MPC relaxed the terminal constraint")
		gPower   = tb.metrics.Gauge("vdcpower_power_watts", "total data-center power draw")
		gActive  = tb.metrics.Gauge("vdcpower_active_servers", "servers currently powered on")
	)
	hT90 := make([]*telemetry.Histogram, len(tb.Apps))
	for i, app := range tb.Apps {
		hT90[i] = tb.metrics.Histogram("vdcpower_t90_seconds", "per-application 90-percentile response time", nil,
			telemetry.Label{Key: "app", Value: app.Name})
	}
	t0 := tb.Sim.Now()
	for k := 0; k < periods; k++ {
		if hook != nil {
			hook(k, tb.Sim.Now()-t0)
		}
		// The fault plane's step cursor counts periods across Run calls,
		// so stepping one period at a time (serve) injects the same
		// schedule as one long run.
		p := tb.periodCount
		tb.periodCount++
		tb.faults.SetStep(p)
		budget := tb.stepBudget
		if tb.faults.BudgetExhausted(p) {
			// Inject exhaustion by draining under a one-event budget: the
			// abort travels the real kernel trip path, not a synthetic error.
			budget = devs.Budget{MaxEvents: 1}
		}
		stats, derr := tb.Sim.RunUntilBudget(tb.Sim.Now()+tb.Cfg.Period, budget)
		tb.obs.RecordDrain(stats.Events, stats.SameTime)
		if tb.checker != nil {
			tb.checker.Observe(check.Event{
				Kind: check.EvGuard,
				Step: p,
				Guard: &check.GuardObservation{
					MaxEvents:   budget.MaxEvents,
					Events:      stats.Events,
					MaxSameTime: budget.MaxSameTimeEvents,
					SameTime:    stats.SameTime,
					Tripped:     derr != nil,
					Aborted:     derr != nil,
				},
			})
		}
		if derr != nil {
			// Budget exhausted: fail the step bounded instead of hanging.
			// The records so far are the partial result; the caller's
			// breaker reacts to the typed abort.
			wall := false
			var be *devs.BudgetError
			if errors.As(derr, &be) {
				wall = be.Reason == devs.ReasonInterrupt
			}
			tb.obs.RecordBudgetTrip(wall)
			tb.obs.Audit().Record(obs.Decision{
				Step:      p,
				TimeSec:   tb.Sim.Now() - t0,
				Component: "guard",
				Action:    "step-abort",
				Target:    "testbed",
				Reason:    derr.Error(),
				Value:     float64(stats.Events),
				Span:      "testbed.period",
			})
			return records, &guard.StepAbort{Period: p, Wall: wall, Err: derr}
		}
		psp := tk.Start("testbed.period").Int("period", k)
		tb.obs.ObserveStep()
		rec := PeriodRecord{Time: tb.Sim.Now() - t0, T90: make([]float64, len(tb.Apps))}
		for i, ctl := range tb.Controllers {
			res, err := ctl.Step()
			if err != nil {
				psp.End()
				return nil, err
			}
			rec.T90[i] = res.T90
			if res.TerminalRelaxed {
				rec.Relaxed++
				mRelax.Inc()
			}
			mPeriods.Inc()
			hT90[i].Observe(res.T90)
			if tb.obs != nil {
				tb.obs.RecordControl(res.Held, res.Dropped, res.OpenLoop, res.HeldStreak)
				if res.HasResidual {
					tb.obs.ObserveResidual(res.Residual)
				}
				// A held period carries no fresh measurement — it must not
				// produce an SLO sample or a response observation.
				if !res.Held {
					tb.obs.ObserveResponse(tb.obsApps[i], res.T90)
				}
				if res.OpenLoop != tb.prevOpenLoop[i] {
					action, reason := "open-loop", "hold window exhausted: frozen at the last-good allocation"
					if !res.OpenLoop {
						action, reason = "close-loop", "valid measurement returned: resuming MPC control"
					}
					tb.obs.Audit().Record(obs.Decision{
						Step: p, TimeSec: tb.Sim.Now(),
						Component: "controller", Action: action, Target: tb.Apps[i].Name,
						Reason: reason, Value: float64(res.HeldStreak), Span: "mpc-" + tb.Apps[i].Name,
					})
					tb.prevOpenLoop[i] = res.OpenLoop
				}
			}
			for j, d := range ctl.Demands() {
				tb.vms[i][j].Demand = d
			}
			if tb.checker != nil {
				tb.checker.Observe(check.Event{
					Kind: check.EvControl,
					Step: p,
					Control: &check.ControlObservation{
						App:        tb.Apps[i].Name,
						Held:       res.Held,
						HeldStreak: res.HeldStreak,
						HoldWindow: ctl.HoldWindow(),
						OpenLoop:   res.OpenLoop,
					},
				})
			}
		}
		// Data-center level: consolidation on the long time scale. An
		// injected transient error degrades the pass — skipped, retried at
		// the next interval; real errors still abort the run.
		if tb.cons != nil && (k+1)%tb.consEvery == 0 {
			if err := tb.consolidate(k); err != nil && !fault.IsInjected(err) {
				psp.End()
				return nil, err
			}
		}
		// Server-level arbitration: DVFS follows the aggregate demands,
		// and grants throttle the tiers when a server is oversubscribed
		// (granted == demanded whenever capacity suffices).
		for _, arb := range tb.Arbitrators {
			if arb.Server.State() != cluster.Active {
				continue
			}
			grants, _ := arb.Arbitrate()
			for _, g := range grants {
				if idx, ok := tb.vmIndex[g.VMID]; ok {
					tb.Apps[idx[0]].Tier(idx[1]).SetCapacity(g.Granted)
				}
			}
		}
		rec.PowerW = tb.DC.TotalPower()
		gPower.Set(rec.PowerW)
		gActive.Set(float64(tb.DC.NumActive()))
		if tb.obs != nil {
			tb.obs.ObservePower(rec.PowerW)
			var solve mpc.SolveStats
			for _, ctl := range tb.Controllers {
				solve.Add(ctl.SolveStats())
			}
			tb.obs.SetMPC(solve.Solves, solve.WarmAttempts, solve.ColdRetries, solve.Relaxations, solve.Fallbacks)
		}
		psp.Float("power_w", rec.PowerW).Int("relaxed", rec.Relaxed).End()
		tb.attributeEnergy(tb.Cfg.Period)
		if tb.checker != nil {
			tb.checkedJ += rec.PowerW * tb.Cfg.Period
			tb.checker.Observe(check.Event{
				Kind:      check.EvStep,
				Step:      k,
				DC:        tb.DC,
				PowerW:    rec.PowerW,
				EnergyJ:   tb.checkedJ,
				HasPower:  true,
				HasEnergy: true,
			})
		}
		records = append(records, rec)
	}
	if tb.checker != nil {
		if err := tb.checker.Err(); err != nil {
			return records, err
		}
	}
	return records, nil
}
