package testbed

import (
	"math"
	"testing"

	"vdcpower/internal/appsim"
	"vdcpower/internal/stats"
)

// threeTierConfig models a web / application / database stack — the
// general multi-tier case the MIMO controller exists for.
func threeTierConfig() Config {
	cfg := DefaultConfig()
	cfg.NumApps = 2
	cfg.NumServers = 2
	cfg.IdentPeriods = 120
	cfg.IdentWarmupSec = 20
	cfg.Tiers = []appsim.TierConfig{
		{DemandMean: 0.015, DemandCV: 1.0, InitialAllocation: 0.7}, // web
		{DemandMean: 0.025, DemandCV: 1.0, InitialAllocation: 0.7}, // app
		{DemandMean: 0.035, DemandCV: 1.0, InitialAllocation: 0.7}, // db
	}
	return cfg
}

func TestThreeTierIdentification(t *testing.T) {
	tb, err := New(threeTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Model.NumInputs != 3 {
		t.Fatalf("model inputs = %d, want 3", tb.Model.NumInputs)
	}
	// The lightest tier's individual gain estimate is noise-dominated (its
	// service demand is ~20 ms against a ~300 ms-noise p90), so assert on
	// what the controller actually relies on: the aggregate effect of CPU
	// and the dominant (database) tier must both be clearly negative.
	total := 0.0
	for i := 0; i < 3; i++ {
		total += tb.Model.DCGain(i)
	}
	if total >= 0 {
		t.Fatalf("total DC gain %v not negative", total)
	}
	if g := tb.Model.DCGain(2); g >= 0 {
		t.Fatalf("database tier DC gain %v not negative", g)
	}
	// 2 apps × 3 tiers = 6 VMs placed.
	if got := len(tb.DC.VMs()); got != 6 {
		t.Fatalf("VMs = %d", got)
	}
}

func TestThreeTierControlConverges(t *testing.T) {
	tb, err := New(threeTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tb.Run(600, nil)
	if err != nil {
		t.Fatal(err)
	}
	tail := recs[len(recs)-25:]
	for i := range tb.Apps {
		var xs []float64
		for _, r := range tail {
			xs = append(xs, r.T90[i])
		}
		if m := stats.Mean(xs); math.Abs(m-1.0) > 0.35 {
			t.Fatalf("3-tier app %d settled at %v", i, m)
		}
	}
}
