package testbed

import (
	"testing"
)

func TestEnergyByAppAllPositive(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(300, nil); err != nil {
		t.Fatal(err)
	}
	byApp := tb.EnergyByAppWh()
	if len(byApp) != len(tb.Apps) {
		t.Fatalf("entries = %d", len(byApp))
	}
	for name, wh := range byApp {
		if wh <= 0 {
			t.Fatalf("%s attributed %v Wh", name, wh)
		}
	}
}

func TestEnergyAttributionBoundedByTotal(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tb.Run(300, nil)
	if err != nil {
		t.Fatal(err)
	}
	totalWh := 0.0
	for _, r := range recs {
		totalWh += r.PowerW * tb.Cfg.Period / 3600
	}
	attributed := 0.0
	for _, wh := range tb.EnergyByAppWh() {
		attributed += wh
	}
	if attributed > totalWh+1e-6 {
		t.Fatalf("attributed %.2f Wh exceeds total %.2f Wh", attributed, totalWh)
	}
	// Attribution covers most of the draw (idle floors are shared too,
	// only empty/sleeping servers go unattributed).
	if attributed < 0.5*totalWh {
		t.Fatalf("attributed only %.2f of %.2f Wh", attributed, totalWh)
	}
}

func TestEnergyAttributionFollowsLoad(t *testing.T) {
	// Double one app's workload: it should be charged more energy than
	// its identically-configured peers.
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb.Apps[0].SetConcurrency(2 * tb.Cfg.Concurrency)
	if _, err := tb.Run(600, nil); err != nil {
		t.Fatal(err)
	}
	byApp := tb.EnergyByAppWh()
	hot := byApp[tb.Apps[0].Name]
	for _, app := range tb.Apps[1:] {
		if hot <= byApp[app.Name] {
			t.Fatalf("hot app %.2f Wh not above peer %s %.2f Wh",
				hot, app.Name, byApp[app.Name])
		}
	}
}

func TestEnergyByAppBeforeRun(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, wh := range tb.EnergyByAppWh() {
		if wh != 0 {
			t.Fatal("energy attributed before any control period")
		}
	}
}
