package testbed

import (
	"math"
	"testing"

	"vdcpower/internal/stats"
)

// Failure injection: the control loop must survive abnormal conditions
// without crashing or destabilizing.

func TestControllerSurvivesTrafficOutage(t *testing.T) {
	// All clients of one app vanish mid-run (upstream outage): the
	// controller holds its last measurement, keeps running, and
	// re-converges when traffic returns.
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(200, nil); err != nil {
		t.Fatal(err)
	}
	app := tb.Apps[0]
	app.SetConcurrency(0)
	if _, err := tb.Run(200, nil); err != nil {
		t.Fatalf("outage crashed the loop: %v", err)
	}
	app.SetConcurrency(tb.Cfg.Concurrency)
	recs, err := tb.Run(400, nil)
	if err != nil {
		t.Fatal(err)
	}
	var xs []float64
	for _, r := range recs[len(recs)-25:] {
		xs = append(xs, r.T90[0])
	}
	if m := stats.Mean(xs); math.Abs(m-tb.Cfg.Setpoint) > 0.4 {
		t.Fatalf("did not re-converge after outage: %v", m)
	}
}

func TestControllerSurvivesExtremeOverload(t *testing.T) {
	// Concurrency ×6 beyond what CMax can serve: the controller must rail
	// at the bounds without error and recover when the flood subsides.
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(120, nil); err != nil {
		t.Fatal(err)
	}
	app := tb.Apps[1]
	app.SetConcurrency(6 * tb.Cfg.Concurrency)
	recs, err := tb.Run(200, nil)
	if err != nil {
		t.Fatalf("flood crashed the loop: %v", err)
	}
	// Allocations railed at CMax for the flooded app.
	railed := false
	for _, d := range tb.Controllers[1].Demands() {
		if d > tb.Cfg.CMax-1e-6 {
			railed = true
		}
	}
	if !railed {
		t.Fatalf("controller did not rail against the flood: %v", tb.Controllers[1].Demands())
	}
	_ = recs
	app.SetConcurrency(tb.Cfg.Concurrency)
	recs, err = tb.Run(400, nil)
	if err != nil {
		t.Fatal(err)
	}
	var xs []float64
	for _, r := range recs[len(recs)-25:] {
		xs = append(xs, r.T90[1])
	}
	if m := stats.Mean(xs); math.Abs(m-tb.Cfg.Setpoint) > 0.4 {
		t.Fatalf("did not recover after flood: %v", m)
	}
}

func TestControllerSurvivesLongTierStall(t *testing.T) {
	// A 30-second database stall (e.g. a lock storm): response times
	// explode, the controller rails, and the loop recovers afterwards.
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(200, nil); err != nil {
		t.Fatal(err)
	}
	tb.Apps[0].PauseTier(1, 30)
	if _, err := tb.Run(100, nil); err != nil {
		t.Fatalf("stall crashed the loop: %v", err)
	}
	recs, err := tb.Run(400, nil)
	if err != nil {
		t.Fatal(err)
	}
	var xs []float64
	for _, r := range recs[len(recs)-25:] {
		xs = append(xs, r.T90[0])
	}
	if m := stats.Mean(xs); math.Abs(m-tb.Cfg.Setpoint) > 0.4 {
		t.Fatalf("did not recover after stall: %v", m)
	}
}
