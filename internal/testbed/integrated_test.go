package testbed

import (
	"math"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/stats"
)

// The integrated two-level experiments: response time controllers at the
// application level plus IPAC at the data-center level, as in Figure 1.

func TestAttachOptimizerValidation(t *testing.T) {
	tb, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOptimizer(nil, 10, cluster.DefaultMigrationModel()); err == nil {
		t.Fatal("nil consolidator accepted")
	}
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 0, cluster.DefaultMigrationModel()); err == nil {
		t.Fatal("zero interval accepted")
	}
	bad := cluster.DefaultMigrationModel()
	bad.BandwidthGbps = 0
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 10, bad); err == nil {
		t.Fatal("invalid migration model accepted")
	}
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 10, cluster.DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
}

func TestIntegratedRunSavesPowerKeepsSLA(t *testing.T) {
	// Two identical testbeds; one also runs IPAC every 50 periods. The
	// integrated system must consume less power in steady state while
	// applications keep their set points — the paper's core claim.
	cfg := DefaultConfig() // 8 apps, 4 servers: consolidation headroom exists
	cfg.NumApps = 6
	baseline, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	integrated, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := integrated.AttachOptimizer(optimizer.NewIPAC(), 50, cluster.DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
	recB, err := baseline.Run(900, nil)
	if err != nil {
		t.Fatal(err)
	}
	recI, err := integrated.Run(900, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := integrated.DC.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(integrated.OptimizerLogs) == 0 {
		t.Fatal("optimizer never ran")
	}

	tailPower := func(recs []PeriodRecord) float64 {
		var xs []float64
		for _, r := range recs[len(recs)-50:] {
			xs = append(xs, r.PowerW)
		}
		return stats.Mean(xs)
	}
	pb, pi := tailPower(recB), tailPower(recI)
	if pi >= pb {
		t.Fatalf("integrated power %v not below baseline %v", pi, pb)
	}
	// Consolidation must have put at least one server to sleep.
	if integrated.DC.NumActive() >= len(integrated.DC.Servers) {
		t.Fatal("no server slept after consolidation")
	}

	// SLA: every app's tail-mean stays near the set point despite the
	// migrations.
	for i := range integrated.Apps {
		var xs []float64
		for _, r := range recI[len(recI)-50:] {
			xs = append(xs, r.T90[i])
		}
		if m := stats.Mean(xs); math.Abs(m-cfg.Setpoint) > 0.45 {
			t.Fatalf("app %d settled at %v under consolidation", i, m)
		}
	}
}

func TestIntegratedMigrationDowntimeVisible(t *testing.T) {
	// With a pathologically slow migration network, consolidation-heavy
	// operation must hurt the affected applications' response times more
	// than a fast network does — the overhead that justifies the paper's
	// two time scales.
	run := func(bandwidthGbps float64, every int) float64 {
		cfg := DefaultConfig()
		cfg.NumApps = 6
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := cluster.DefaultMigrationModel()
		model.BandwidthGbps = bandwidthGbps
		// Few pre-copy passes so the slow network's stop-and-copy
		// downtime (seconds) clearly dominates measurement noise.
		model.Passes = 2
		if err := tb.AttachOptimizer(optimizer.NewIPAC(), every, model); err != nil {
			t.Fatal(err)
		}
		recs, err := tb.Run(600, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Worst per-period p90 across apps after the first invocation.
		worst := 0.0
		for _, r := range recs[every:] {
			for _, v := range r.T90 {
				if v > worst {
					worst = v
				}
			}
		}
		return worst
	}
	slow := run(0.02, 25) // 20 Mbps: seconds of downtime per move
	fast := run(10, 25)   // 10 Gbps: negligible downtime
	if slow <= fast {
		t.Fatalf("slow network worst-case %v not above fast %v", slow, fast)
	}
}

func TestIntegratedOptimizerLogsRecordMoves(t *testing.T) {
	cfg := quickConfig()
	cfg.NumApps = 4
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 20, cluster.DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(400, nil); err != nil {
		t.Fatal(err)
	}
	moves := 0
	for _, rep := range tb.OptimizerLogs {
		moves += len(rep.Moves)
		if rep.Migrations != len(rep.Moves) {
			t.Fatalf("Migrations=%d but %d moves recorded", rep.Migrations, len(rep.Moves))
		}
	}
	if moves == 0 {
		t.Fatal("no moves recorded across the run")
	}
}
