package testbed

import (
	"math"

	"vdcpower/internal/stats"
)

// RunStatic advances the testbed for the given duration without stepping
// the controllers: allocations stay frozen at their current values, as
// in a statically provisioned deployment. Records carry the measured
// per-app 90-percentiles and power so controller-on and controller-off
// runs can be compared under identical workloads (the comparison behind
// Figure 3's caption, where the baseline lacks response time control).
func (tb *Testbed) RunStatic(duration float64, hook func(period int, now float64)) ([]PeriodRecord, error) {
	periods := int(duration / tb.Cfg.Period)
	records := make([]PeriodRecord, 0, periods)
	last := make([]float64, len(tb.Apps))
	for i := range last {
		last[i] = tb.Cfg.Setpoint
	}
	t0 := tb.Sim.Now()
	for k := 0; k < periods; k++ {
		if hook != nil {
			hook(k, tb.Sim.Now()-t0)
		}
		tb.Sim.RunUntil(tb.Sim.Now() + tb.Cfg.Period)
		rec := PeriodRecord{Time: tb.Sim.Now() - t0, T90: make([]float64, len(tb.Apps))}
		for i, app := range tb.Apps {
			if t90 := stats.Percentile(app.DrainResponseTimes(), 90); !math.IsNaN(t90) {
				last[i] = t90
			}
			rec.T90[i] = last[i]
		}
		for _, arb := range tb.Arbitrators {
			arb.Arbitrate()
		}
		rec.PowerW = tb.DC.TotalPower()
		records = append(records, rec)
	}
	return records, nil
}

// Fig3Static runs the Figure 3 surge scenario with the response time
// controllers frozen after an initial settling phase: the uncontrolled
// system violates its set point for the whole surge, demonstrating why
// DVFS/consolidation alone (the pMapper-style baseline) is not enough.
func Fig3Static(cfg Config) (*Fig3Result, error) {
	tb, err := New(cfg)
	if err != nil {
		return nil, err
	}
	appIdx := 4
	if appIdx >= len(tb.Apps) {
		appIdx = len(tb.Apps) - 1
	}
	// Settle under control, then freeze each tier at its time-averaged
	// steady-state allocation — the provisioning a static deployment
	// would pick. Freezing at one instant would inherit that period's
	// controller noise.
	if _, err := tb.Run(DefaultSettleSec, nil); err != nil {
		return nil, err
	}
	const avgPeriods = 25
	sums := make([][]float64, len(tb.Apps))
	for k := 0; k < avgPeriods; k++ {
		if _, err := tb.Run(cfg.Period, nil); err != nil {
			return nil, err
		}
		for i, ctl := range tb.Controllers {
			d := ctl.Demands()
			if sums[i] == nil {
				sums[i] = make([]float64, len(d))
			}
			for j, v := range d {
				sums[i][j] += v
			}
		}
	}
	for i, a := range tb.Apps {
		for j := range sums[i] {
			a.SetAllocation(j, sums[i][j]/avgPeriods)
		}
	}
	const stepStart, stepEnd, total = 600.0, 1200.0, 1800.0
	app := tb.Apps[appIdx]
	base := cfg.Concurrency
	recs, err := tb.RunStatic(total, func(_ int, now float64) {
		switch {
		case now >= stepStart && now < stepEnd && app.Concurrency() == base:
			app.SetConcurrency(2 * base)
		case now >= stepEnd && app.Concurrency() != base:
			app.SetConcurrency(base)
		}
	})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{AppLabel: app.Name, StepStart: stepStart, StepEnd: stepEnd}
	for _, r := range recs {
		res.ResponseTime = append(res.ResponseTime, SeriesPoint{Time: r.Time, Value: r.T90[appIdx]})
		res.Power = append(res.Power, SeriesPoint{Time: r.Time, Value: r.PowerW})
	}
	return res, nil
}

// ViolationRate returns the fraction of control periods in which an
// application's measured metric exceeded tolerance × its set point — the
// SLA-violation statistic used to compare controlled and uncontrolled
// runs.
func ViolationRate(recs []PeriodRecord, appIdx int, setpoint, tolerance float64) float64 {
	if len(recs) == 0 {
		return 0
	}
	viol := 0
	for _, r := range recs {
		if r.T90[appIdx] > setpoint*tolerance {
			viol++
		}
	}
	return float64(viol) / float64(len(recs))
}
