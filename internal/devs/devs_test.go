package devs

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := NewSimulator()
	var at float64
	s.Schedule(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := NewSimulator()
	fired := false
	e := s.Schedule(1, func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelDoesNotBlockOthers(t *testing.T) {
	s := NewSimulator()
	fired := 0
	e := s.Schedule(1, func() { fired++ })
	s.Schedule(1, func() { fired++ })
	e.Cancel()
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewSimulator()
	fired := 0
	s.Schedule(1, func() { fired++ })
	s.Schedule(5, func() { fired++ })
	s.RunUntil(3)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
	s.RunUntil(10)
	if fired != 2 || s.Now() != 10 {
		t.Fatalf("fired = %d Now = %v", fired, s.Now())
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	s := NewSimulator()
	s.Schedule(5, func() {})
	s.Run()
	s.RunUntil(2) // in the past: must be a no-op for the clock
	if s.Now() != 5 {
		t.Fatalf("Now = %v, want 5", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewSimulator()
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Schedule(1, func() {})
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := NewSimulator()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewSimulator()
	var times []float64
	var chain func()
	n := 0
	chain = func() {
		times = append(times, s.Now())
		n++
		if n < 5 {
			s.After(2, chain)
		}
	}
	s.Schedule(1, chain)
	s.Run()
	want := []float64{1, 3, 5, 7, 9}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestPending(t *testing.T) {
	s := NewSimulator()
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending after Run = %d", s.Pending())
	}
}

// Property: random schedules always fire in nondecreasing time order.
func TestRandomScheduleOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSimulator()
		n := 1 + rng.Intn(200)
		times := make([]float64, n)
		var fired []float64
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			times[i] = at
			s.Schedule(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != n {
			return false
		}
		sort.Float64s(times)
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun1k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSimulator()
		rng := rand.New(rand.NewSource(9))
		for j := 0; j < 1000; j++ {
			s.Schedule(rng.Float64()*1000, func() {})
		}
		s.Run()
	}
}
