package devs

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"
)

// Budget bounds one drain of the event queue. A zero Budget imposes no
// bound. Budgets exist because a broken model can schedule events forever
// at one instant (a Zeno storm, ROADMAP item 6): the kernel must be able
// to hand control back to its caller instead of spinning.
type Budget struct {
	// MaxEvents caps the total events fired in one drain. 0 = unbounded.
	MaxEvents int
	// MaxSameTimeEvents caps the number of consecutive events fired at a
	// single virtual instant — the signature of a Zeno loop. 0 = unbounded.
	MaxSameTimeEvents int
	// Interrupt, when non-nil, is polled periodically during the drain;
	// returning true aborts it. The callback must be cheap and must not
	// touch the simulator. It is how a wall-clock watchdog reaches into
	// the drain without the kernel ever reading a real clock.
	Interrupt func() bool
}

// interruptEvery is how many events pass between Interrupt polls.
const interruptEvery = 64

// DrainStats summarizes one bounded drain. It is returned by value so a
// budget check on the hot path costs no allocation.
type DrainStats struct {
	Events   int // events fired during the drain
	SameTime int // longest run of events sharing one virtual instant
}

// ErrBudgetExceeded is the sentinel matched by errors.Is when a drain is
// cut short by its Budget. The concrete error is a *BudgetError carrying
// the stuck timestamp and a sample of pending-event provenance.
var ErrBudgetExceeded = errors.New("devs: drain budget exceeded")

// Budget trip reasons, recorded in BudgetError.Reason.
const (
	ReasonMaxEvents = "max-events"
	ReasonSameTime  = "same-time-events"
	ReasonInterrupt = "interrupt"
)

// PendingEvent is one entry of the provenance sample attached to a
// BudgetError: what was still queued when the drain was cut short.
type PendingEvent struct {
	Time  float64
	Label string
}

// BudgetError reports a drain cut short by its Budget.
type BudgetError struct {
	Reason   string         // which bound tripped (Reason* constants)
	At       float64        // virtual time when the drain stopped
	Events   int            // events fired before the trip
	SameTime int            // longest same-instant run observed
	Pending  int            // live events still queued
	Sample   []PendingEvent // up to sampleSize pending events, for diagnosis
}

const sampleSize = 4

func (e *BudgetError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "devs: drain budget exceeded (%s) at t=%.6g: %d events fired (longest same-instant run %d), %d pending",
		e.Reason, e.At, e.Events, e.SameTime, e.Pending)
	if len(e.Sample) > 0 {
		b.WriteString("; pending sample:")
		for _, p := range e.Sample {
			label := p.Label
			if label == "" {
				label = "(unlabeled)"
			}
			fmt.Fprintf(&b, " %s@%.6g", label, p.Time)
		}
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) work.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// budgetError builds the trip diagnosis. Cold path: it only runs when a
// drain is being aborted, so its allocations never tax a healthy drain.
func (s *Simulator) budgetError(reason string, st DrainStats) error {
	be := &BudgetError{
		Reason:   reason,
		At:       s.now,
		Events:   st.Events,
		SameTime: st.SameTime,
		Pending:  len(s.heap) - s.cancelled,
	}
	for _, e := range s.heap {
		if e.cancelled {
			continue
		}
		be.Sample = append(be.Sample, PendingEvent{Time: e.Time, Label: e.Label})
		if len(be.Sample) == sampleSize {
			break
		}
	}
	return be
}

// RunUntilBudget fires every event with Time <= t, subject to the budget,
// and then advances the clock to exactly t. When a bound trips it stops
// mid-drain — the clock rests at the last fired event — and returns the
// stats so far plus a *BudgetError. With a zero Budget it behaves exactly
// like RunUntil and never returns an error.
func (s *Simulator) RunUntilBudget(t float64, b Budget) (DrainStats, error) {
	var st DrainStats
	var runTime float64 // instant of the current same-time run
	run := 0            // events fired at runTime so far
	for len(s.heap) > 0 && s.heap[0].Time <= t {
		e := heap.Pop(&s.heap).(*Event)
		if e.cancelled {
			s.cancelled--
			continue
		}
		s.now = e.Time
		e.fn()
		st.Events++
		//lint:ignore floatcompare same-instant detection must be exact; an epsilon would mistake distinct times for a Zeno run
		if st.Events == 1 || e.Time != runTime {
			runTime = e.Time
			run = 1
		} else {
			run++
		}
		if run > st.SameTime {
			st.SameTime = run
		}
		// Trip only when queued work remains inside the horizon; a bound
		// reached on the drain's final event is not an overrun.
		more := len(s.heap) > 0 && s.heap[0].Time <= t
		if b.MaxEvents > 0 && st.Events >= b.MaxEvents && more {
			return st, s.budgetError(ReasonMaxEvents, st)
		}
		//lint:ignore floatcompare the same-time bound trips only if the next event shares this exact instant
		if b.MaxSameTimeEvents > 0 && run >= b.MaxSameTimeEvents && more && s.heap[0].Time == runTime {
			return st, s.budgetError(ReasonSameTime, st)
		}
		if b.Interrupt != nil && st.Events%interruptEvery == 0 && b.Interrupt() {
			return st, s.budgetError(ReasonInterrupt, st)
		}
	}
	if t > s.now {
		s.now = t
	}
	return st, nil
}
