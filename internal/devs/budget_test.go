package devs

import (
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"vdcpower/internal/race"
)

// A zero budget must be indistinguishable from RunUntil.
func TestRunUntilBudgetZeroBudgetMatchesRunUntil(t *testing.T) {
	runOrder := func(drain func(s *Simulator)) []float64 {
		s := NewSimulator()
		rng := rand.New(rand.NewSource(11))
		var fired []float64
		for i := 0; i < 500; i++ {
			s.Schedule(rng.Float64()*100, func() { fired = append(fired, s.Now()) })
		}
		drain(s)
		return fired
	}
	plain := runOrder(func(s *Simulator) { s.RunUntil(200) })
	budgeted := runOrder(func(s *Simulator) {
		st, err := s.RunUntilBudget(200, Budget{})
		if err != nil {
			t.Fatalf("zero budget tripped: %v", err)
		}
		if st.Events != 500 {
			t.Fatalf("Events = %d, want 500", st.Events)
		}
	})
	if len(plain) != len(budgeted) {
		t.Fatalf("fired %d vs %d events", len(plain), len(budgeted))
	}
	for i := range plain {
		if plain[i] != budgeted[i] {
			t.Fatalf("order diverged at %d: %v vs %v", i, plain[i], budgeted[i])
		}
	}
}

func TestRunUntilBudgetMaxEventsTrip(t *testing.T) {
	s := NewSimulator()
	fired := 0
	for i := 0; i < 100; i++ {
		e := s.Schedule(float64(i), func() { fired++ })
		e.Label = "tick"
	}
	st, err := s.RunUntilBudget(1000, Budget{MaxEvents: 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err is not *BudgetError: %v", err)
	}
	if be.Reason != ReasonMaxEvents {
		t.Fatalf("Reason = %q", be.Reason)
	}
	if fired != 10 || st.Events != 10 || be.Events != 10 {
		t.Fatalf("fired=%d st.Events=%d be.Events=%d, want 10", fired, st.Events, be.Events)
	}
	if be.At != 9 {
		t.Fatalf("At = %v, want 9 (last fired event)", be.At)
	}
	if be.Pending != 90 {
		t.Fatalf("Pending = %d, want 90", be.Pending)
	}
	if len(be.Sample) != sampleSize {
		t.Fatalf("Sample size = %d, want %d", len(be.Sample), sampleSize)
	}
	for _, p := range be.Sample {
		if p.Label != "tick" {
			t.Fatalf("Sample label = %q, want tick", p.Label)
		}
	}
	if !strings.Contains(be.Error(), "tick@") {
		t.Fatalf("Error() lacks provenance: %s", be.Error())
	}
	// The drain is resumable: finishing without a budget fires the rest.
	if _, err := s.RunUntilBudget(1000, Budget{}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if fired != 100 {
		t.Fatalf("fired = %d after resume, want 100", fired)
	}
}

// A bound reached on the drain's very last event is not an overrun.
func TestRunUntilBudgetNoTripOnFinalEvent(t *testing.T) {
	s := NewSimulator()
	for i := 0; i < 10; i++ {
		s.Schedule(float64(i), func() {})
	}
	st, err := s.RunUntilBudget(1000, Budget{MaxEvents: 10})
	if err != nil {
		t.Fatalf("tripped on final event: %v", err)
	}
	if st.Events != 10 {
		t.Fatalf("Events = %d", st.Events)
	}
	if s.Now() != 1000 {
		t.Fatalf("Now = %v, want horizon 1000", s.Now())
	}
}

// A self-rescheduling event at the current instant is the Zeno-storm
// signature; the same-time bound must cut it off.
func TestRunUntilBudgetSameTimeTrip(t *testing.T) {
	s := NewSimulator()
	fired := 0
	var storm func()
	storm = func() {
		fired++
		e := s.Schedule(s.Now(), storm)
		e.Label = "storm"
	}
	s.Schedule(1, storm)
	st, err := s.RunUntilBudget(10, Budget{MaxSameTimeEvents: 50})
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != ReasonSameTime {
		t.Fatalf("err = %v, want same-time trip", err)
	}
	if st.SameTime < 50 {
		t.Fatalf("SameTime = %d, want >= 50", st.SameTime)
	}
	if s.Now() != 1 {
		t.Fatalf("Now = %v, want stuck at 1", s.Now())
	}
	if fired > 51 {
		t.Fatalf("fired %d events before trip", fired)
	}
}

// Distinct timestamps never trip the same-time bound, however many there are.
func TestRunUntilBudgetSameTimeIgnoresAdvancingClock(t *testing.T) {
	s := NewSimulator()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 1000 {
			s.After(1e-9, chain)
		}
	}
	s.Schedule(0, chain)
	if _, err := s.RunUntilBudget(1, Budget{MaxSameTimeEvents: 2}); err != nil {
		t.Fatalf("advancing chain tripped same-time bound: %v", err)
	}
	if n != 1000 {
		t.Fatalf("n = %d", n)
	}
}

func TestRunUntilBudgetInterrupt(t *testing.T) {
	s := NewSimulator()
	for i := 0; i < 1000; i++ {
		s.Schedule(float64(i), func() {})
	}
	polls := 0
	st, err := s.RunUntilBudget(1e6, Budget{Interrupt: func() bool {
		polls++
		return polls >= 2
	}})
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != ReasonInterrupt {
		t.Fatalf("err = %v, want interrupt trip", err)
	}
	if st.Events != 2*interruptEvery {
		t.Fatalf("Events = %d, want %d (two poll intervals)", st.Events, 2*interruptEvery)
	}
}

// Satellite 1: heavy cancel churn must not bloat the heap. The lazy purge
// keeps Pending() (and the backing heap) bounded even when most scheduled
// events are cancelled before firing, as PSQueue re-arms do.
func TestCancelChurnKeepsPendingBounded(t *testing.T) {
	s := NewSimulator()
	fired := 0
	var prev *Event
	const churn = 100_000
	for i := 0; i < churn; i++ {
		if prev != nil {
			prev.Cancel()
		}
		prev = s.Schedule(float64(i+1), func() { fired++ })
		if h := len(s.heap); h > 2*purgeThreshold+2 {
			t.Fatalf("heap grew to %d entries after %d cancels", h, i)
		}
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 live event", s.Pending())
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want only the survivor", fired)
	}
}

// The purge must not disturb firing order among survivors.
func TestPurgePreservesOrder(t *testing.T) {
	s := NewSimulator()
	rng := rand.New(rand.NewSource(3))
	var events []*Event
	var fired []float64
	for i := 0; i < 2000; i++ {
		at := rng.Float64() * 100
		events = append(events, s.Schedule(at, func() { fired = append(fired, s.Now()) }))
	}
	// Cancel a random two-thirds to force purges mid-stream.
	for i, e := range events {
		if i%3 != 0 {
			e.Cancel()
		}
	}
	s.Run()
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("order regressed at %d: %v then %v", i, fired[i-1], fired[i])
		}
	}
	if len(fired) == 0 {
		t.Fatal("no survivors fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	s := NewSimulator()
	e := s.Schedule(1, func() {})
	e.Cancel()
	e.Cancel() // double-cancel must not double-count toward the purge
	if s.cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", s.cancelled)
	}
	s.Run()
}

// Acceptance: the budget check on the hot drain path adds no allocations.
// testing.AllocsPerRun's warm-up call would empty the heap before the
// measured run, so this measures one real drain via MemStats instead.
func TestRunUntilBudgetDrainZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gate not meaningful under -race")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	s := NewSimulator()
	at := 0.0
	fn := func() {}
	budget := Budget{MaxEvents: 1 << 30, MaxSameTimeEvents: 1 << 30}
	fill := func() {
		for i := 0; i < 256; i++ {
			at++
			s.Schedule(at, fn)
		}
	}
	// Warm up so the heap's backing array reaches steady-state capacity.
	for r := 0; r < 3; r++ {
		fill()
		if _, err := s.RunUntilBudget(at, budget); err != nil {
			t.Fatal(err)
		}
	}
	fill()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := s.RunUntilBudget(at, budget); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if d := after.Mallocs - before.Mallocs; d != 0 {
		t.Fatalf("budgeted drain of 256 events allocated %d times, want 0", d)
	}
}
