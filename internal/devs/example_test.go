package devs_test

import (
	"fmt"

	"vdcpower/internal/devs"
)

func ExampleSimulator() {
	sim := devs.NewSimulator()
	sim.Schedule(2.0, func() { fmt.Println("second at", sim.Now()) })
	sim.Schedule(1.0, func() {
		fmt.Println("first at", sim.Now())
		sim.After(0.5, func() { fmt.Println("follow-up at", sim.Now()) })
	})
	sim.Run()
	// Output:
	// first at 1
	// follow-up at 1.5
	// second at 2
}
