// Package devs is a small discrete-event simulation kernel: a virtual
// clock and a priority queue of callbacks. It underlies the multi-tier
// application simulator that stands in for the paper's Xen/RUBBoS testbed.
//
// Determinism: events at equal timestamps fire in scheduling order, so a
// simulation driven by seeded randomness is fully reproducible.
package devs

import "container/heap"

// Event is a scheduled callback. The zero Event is not valid; obtain
// events from Simulator.Schedule or Simulator.After.
type Event struct {
	Time float64
	// Label names the event's provenance ("psqueue.complete", ...) so a
	// budget-exceeded error can report what the stuck queue is made of.
	// Optional; set it right after Schedule/After.
	Label     string
	fn        func()
	sim       *Simulator
	seq       uint64
	index     int // heap index, -1 once popped or purged
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already fired or
// cancelled event is a no-op. Cancelled events are reclaimed lazily: once
// they outnumber live ones they are purged in one pass, so cancel-heavy
// reschedule churn cannot bloat the heap.
func (e *Event) Cancel() {
	if e.cancelled {
		return
	}
	e.cancelled = true
	if e.sim != nil && e.index >= 0 {
		e.sim.cancelled++
		e.sim.maybePurge()
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floatcompare exact tie-break in event ordering; an epsilon would reorder events
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns a virtual clock and the pending event queue.
type Simulator struct {
	now       float64
	heap      eventHeap
	seq       uint64
	cancelled int // cancelled events still occupying heap slots
}

// NewSimulator returns a simulator with the clock at zero.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of live queued events. Cancelled events
// awaiting the lazy purge are not counted: cancellation is immediate in
// effect even when the tombstone lingers in the heap.
func (s *Simulator) Pending() int { return len(s.heap) - s.cancelled }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Simulator) Schedule(at float64, fn func()) *Event {
	if at < s.now {
		//lint:ignore panicpolicy simulator invariant: scheduling into the past means a broken model
		panic("devs: scheduling event in the past")
	}
	e := &Event{Time: at, fn: fn, sim: s, seq: s.seq}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// purgeThreshold is the minimum number of cancelled events before a purge
// pass is worth its O(n) cost.
const purgeThreshold = 64

// maybePurge drops cancelled events from the heap once they outnumber the
// live ones. Heap order after Init is determined solely by (Time, seq),
// so a purge never changes the firing order of the surviving events.
func (s *Simulator) maybePurge() {
	if s.cancelled < purgeThreshold || s.cancelled*2 <= len(s.heap) {
		return
	}
	live := s.heap[:0]
	for _, e := range s.heap {
		if e.cancelled {
			e.index = -1
			continue
		}
		e.index = len(live)
		live = append(live, e)
	}
	for i := len(live); i < len(s.heap); i++ {
		s.heap[i] = nil
	}
	s.heap = live
	heap.Init(&s.heap)
	s.cancelled = 0
}

// After queues fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) *Event {
	return s.Schedule(s.now+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if the queue is empty. Cancelled events are discarded
// without firing.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.cancelled {
			s.cancelled--
			continue
		}
		s.now = e.Time
		e.fn()
		return true
	}
	return false
}

// RunUntil fires every event with Time <= t and then advances the clock
// to exactly t. It is RunUntilBudget with no budget: the drain cannot be
// interrupted.
func (s *Simulator) RunUntil(t float64) {
	_, _ = s.RunUntilBudget(t, Budget{})
}

// Run drains the queue completely.
func (s *Simulator) Run() {
	for s.Step() {
	}
}
