// Package devs is a small discrete-event simulation kernel: a virtual
// clock and a priority queue of callbacks. It underlies the multi-tier
// application simulator that stands in for the paper's Xen/RUBBoS testbed.
//
// Determinism: events at equal timestamps fire in scheduling order, so a
// simulation driven by seeded randomness is fully reproducible.
package devs

import "container/heap"

// Event is a scheduled callback. The zero Event is not valid; obtain
// events from Simulator.Schedule or Simulator.After.
type Event struct {
	Time      float64
	fn        func()
	seq       uint64
	index     int // heap index, -1 once popped or cancelled
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already fired or
// cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floatcompare exact tie-break in event ordering; an epsilon would reorder events
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns a virtual clock and the pending event queue.
type Simulator struct {
	now  float64
	heap eventHeap
	seq  uint64
}

// NewSimulator returns a simulator with the clock at zero.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of queued (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.heap) }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Simulator) Schedule(at float64, fn func()) *Event {
	if at < s.now {
		//lint:ignore panicpolicy simulator invariant: scheduling into the past means a broken model
		panic("devs: scheduling event in the past")
	}
	e := &Event{Time: at, fn: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// After queues fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) *Event {
	return s.Schedule(s.now+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if the queue is empty. Cancelled events are discarded
// without firing.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.Time
		e.fn()
		return true
	}
	return false
}

// RunUntil fires every event with Time <= t and then advances the clock
// to exactly t.
func (s *Simulator) RunUntil(t float64) {
	for len(s.heap) > 0 && s.heap[0].Time <= t {
		if !s.Step() {
			break
		}
	}
	if t > s.now {
		s.now = t
	}
}

// Run drains the queue completely.
func (s *Simulator) Run() {
	for s.Step() {
	}
}
