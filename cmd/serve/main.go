// Command serve runs the testbed as a live demo behind an HTTP API: the
// control loops advance in the background (one control period per tick)
// while /status, /history and /metrics expose the closed-loop state and
// /setpoint, /concurrency poke it.
//
//	serve -addr :8080 -tick 250ms
//	curl localhost:8080/status
//	curl -X POST 'localhost:8080/concurrency?app=4&level=80'   # Fig. 3 surge
//	curl localhost:8080/metrics
//	curl localhost:8080/trace > trace.json    # Chrome-trace span recording
//	serve -pprof                              # adds /debug/pprof/ profiling
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"vdcpower/internal/fault"
	"vdcpower/internal/guard"
	"vdcpower/internal/obs"
	"vdcpower/internal/serve"
	"vdcpower/internal/testbed"
	"vdcpower/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	def := guard.DefaultStepBudget()
	var (
		addr = flag.String("addr", ":8080", "listen address")
		tick = flag.Duration("tick", 250*time.Millisecond, "wall-clock time per control period")
		apps = flag.Int("apps", 8, "number of applications")
		srv  = flag.Int("servers", 4, "number of servers")
		pprf = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		stepEvents = flag.Int("step-budget-events", def.MaxEvents,
			"max kernel events one control period may drain (0 = unbounded)")
		stepSame = flag.Int("step-budget-same-time", def.MaxSameTimeEvents,
			"max events at one sim instant per period — the Zeno-storm bound (0 = unbounded)")
		stepWall = flag.Duration("step-deadline", def.Wall,
			"wall-clock watchdog deadline per control period (0 = none)")
		faultsPath = flag.String("faults", "",
			"JSON fault profile (fault.Profile) injected into the control loop; the guard class exhausts step budgets")
		replayPath = flag.String("replay", "",
			"replay spec JSON (internal/trace.ReplaySpec): drive application concurrency from a deterministically replayed real trace")
		replayConc = flag.Int("replay-max-conc", 0,
			"clients per application at full replayed utilization (0 = twice the testbed baseline)")
	)
	flag.Parse()

	cfg := testbed.DefaultConfig()
	cfg.NumApps = *apps
	cfg.NumServers = *srv
	fmt.Println("building testbed and running system identification...")
	tb, err := testbed.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified model: %s (R²=%.2f)\n", tb.Model, tb.Fit.R2)

	s := serve.New(tb)
	s.SetGuard(guard.StepBudget{
		MaxEvents:         *stepEvents,
		MaxSameTimeEvents: *stepSame,
		Wall:              *stepWall,
	})
	if *faultsPath != "" {
		prof, err := fault.LoadProfile(*faultsPath)
		if err != nil {
			log.Fatal(err)
		}
		s.AttachFaults(fault.New(prof))
		fmt.Printf("fault profile loaded from %s\n", *faultsPath)
	}
	if *replayPath != "" {
		sp, err := trace.LoadSpec(*replayPath)
		if err != nil {
			log.Fatal(err)
		}
		src, closer, err := sp.Open()
		if err != nil {
			log.Fatal(err)
		}
		//lint:ignore errcheck read-side close at process exit
		defer closer.Close()
		pipeline, err := sp.Pipeline()
		if err != nil {
			log.Fatal(err)
		}
		stream := trace.NewStream(src, trace.ReplayConfig{
			StepSeconds: sp.StepSeconds(), Seed: sp.Seed, Distortions: pipeline,
		})
		maxConc := *replayConc
		if maxConc <= 0 {
			maxConc = 2 * cfg.Concurrency
		}
		feed, err := trace.NewFeed(stream, trace.FeedConfig{
			StepSeconds: sp.StepSeconds(), Apps: cfg.NumApps, Seed: sp.Seed, MaxConcurrency: maxConc,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := sp.SourceLabel()
		s.AttachReplay(feed, func(final bool) *obs.ReplayProvenance {
			st := stream.Stats()
			prov := &obs.ReplayProvenance{Source: label, Seed: sp.Seed, Records: st.Records, Distorted: st.Distorted}
			for _, d := range st.Distortion {
				prov.Distortions = append(prov.Distortions, obs.ReplayDistortion{Name: d.Name, Params: d.Params, Distorted: d.Distorted})
			}
			return prov
		})
		fmt.Printf("replaying %s into %d apps (max concurrency %d)\n", label, cfg.NumApps, maxConc)
	}
	s.Start(*tick)
	defer s.Stop()

	// pprof stays off unless asked for: the profiling endpoints are
	// registered explicitly on our own mux, never the default one, so the
	// blank import side effect of net/http/pprof is not relied upon.
	handler := s.Handler()
	if *pprf {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	fmt.Printf("serving on %s — try:\n", *addr)
	fmt.Printf("  curl %s/status\n", *addr)
	fmt.Printf("  curl %s/metrics\n", *addr)
	fmt.Printf("  curl %s/trace > trace.json\n", *addr)
	fmt.Printf("  curl -X POST '%s/concurrency?app=0&level=80'\n", *addr)
	if *pprf {
		fmt.Printf("  go tool pprof 'http://localhost%s/debug/pprof/profile?seconds=10'\n", *addr)
	}
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}
