// Command serve runs the testbed as a live demo behind an HTTP API: the
// control loops advance in the background (one control period per tick)
// while /status, /history and /metrics expose the closed-loop state and
// /setpoint, /concurrency poke it.
//
//	serve -addr :8080 -tick 250ms
//	curl localhost:8080/status
//	curl -X POST 'localhost:8080/concurrency?app=4&level=80'   # Fig. 3 surge
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"vdcpower/internal/serve"
	"vdcpower/internal/testbed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		addr = flag.String("addr", ":8080", "listen address")
		tick = flag.Duration("tick", 250*time.Millisecond, "wall-clock time per control period")
		apps = flag.Int("apps", 8, "number of applications")
		srv  = flag.Int("servers", 4, "number of servers")
	)
	flag.Parse()

	cfg := testbed.DefaultConfig()
	cfg.NumApps = *apps
	cfg.NumServers = *srv
	fmt.Println("building testbed and running system identification...")
	tb, err := testbed.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified model: %s (R²=%.2f)\n", tb.Model, tb.Fit.R2)

	s := serve.New(tb)
	s.Start(*tick)
	defer s.Stop()

	fmt.Printf("serving on %s — try:\n", *addr)
	fmt.Printf("  curl %s/status\n", *addr)
	fmt.Printf("  curl %s/metrics\n", *addr)
	fmt.Printf("  curl -X POST '%s/concurrency?app=0&level=80'\n", *addr)
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		log.Fatal(err)
	}
}
