// Command vdclint runs the project-native static analyzers of
// internal/lint over the module: the syntactic invariants (determinism,
// telemetry, floatcompare, goroutine, panicpolicy, errcheck) and the
// dataflow-grade family (units, hotalloc, mutexcopy, lockorder,
// chanleak); see README.md "Static analysis & reproducibility
// invariants" and DESIGN.md §11.
//
// Usage:
//
//	go run ./cmd/vdclint [flags] [./... | ./internal/mpc ...]
//
// Flags:
//
//	-json            emit findings as a JSON array (for CI)
//	-enable  a,b,c   run only the named analyzers
//	-disable a,b,c   run all but the named analyzers
//	-list            print the analyzer registry and exit
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// loader/usage errors. Suppress an individual finding at its line (or
// the line above) with //lint:ignore <rule>[,<rule>] <reason>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"vdcpower/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vdclint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "print the analyzer registry and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(os.Stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(analyzers, *enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdclint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdclint:", err)
		return 2
	}
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdclint:", err)
		return 2
	}
	pkgs, err := mod.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdclint:", err)
		return 2
	}

	findings := mod.Analyze(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "vdclint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "vdclint: %d findings in %d packages\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable, rejecting unknown names so
// typos fail loudly instead of silently running nothing.
func selectAnalyzers(all []*lint.Analyzer, enable, disable string) ([]*lint.Analyzer, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(csv string) ([]string, error) {
		var names []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (have: %s)", n, names1(all))
			}
			names = append(names, n)
		}
		return names, nil
	}
	switch {
	case enable != "":
		names, err := parse(enable)
		if err != nil {
			return nil, err
		}
		var out []*lint.Analyzer
		for _, a := range all { // preserve registry order
			for _, n := range names {
				if a.Name == n {
					out = append(out, a)
				}
			}
		}
		return out, nil
	case disable != "":
		names, err := parse(disable)
		if err != nil {
			return nil, err
		}
		skip := map[string]bool{}
		for _, n := range names {
			skip[n] = true
		}
		var out []*lint.Analyzer
		for _, a := range all {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	default:
		return all, nil
	}
}

func names1(all []*lint.Analyzer) string {
	var ns []string
	for _, a := range all {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}
