package main

import (
	"os"
	"strings"
	"testing"

	"vdcpower/internal/lint"
)

func analyzerNames(as []*lint.Analyzer) []string {
	var ns []string
	for _, a := range as {
		ns = append(ns, a.Name)
	}
	return ns
}

func TestSelectAnalyzersEnable(t *testing.T) {
	all := lint.Analyzers()
	got, err := selectAnalyzers(all, "units,errcheck", "")
	if err != nil {
		t.Fatal(err)
	}
	// Registry order is preserved regardless of the -enable order.
	want := "errcheck,units"
	if s := strings.Join(analyzerNames(got), ","); s != want {
		t.Fatalf("enabled = %s, want %s", s, want)
	}
}

func TestSelectAnalyzersDisable(t *testing.T) {
	all := lint.Analyzers()
	got, err := selectAnalyzers(all, "", "hotalloc, chanleak")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-2 {
		t.Fatalf("disabled 2 of %d, got %d", len(all), len(got))
	}
	for _, a := range got {
		if a.Name == "hotalloc" || a.Name == "chanleak" {
			t.Fatalf("analyzer %s survived -disable", a.Name)
		}
	}
}

func TestSelectAnalyzersUnknownName(t *testing.T) {
	all := lint.Analyzers()
	for _, csv := range []string{"unitz", "units,erRcheck", "lockordr"} {
		if _, err := selectAnalyzers(all, csv, ""); err == nil {
			t.Errorf("-enable %q: want error, got nil", csv)
		} else if !strings.Contains(err.Error(), "unknown analyzer") {
			t.Errorf("-enable %q: error %q does not name the unknown analyzer", csv, err)
		}
		if _, err := selectAnalyzers(all, "", csv); err == nil {
			t.Errorf("-disable %q: want error, got nil", csv)
		}
	}
}

func TestSelectAnalyzersMutuallyExclusive(t *testing.T) {
	if _, err := selectAnalyzers(lint.Analyzers(), "units", "errcheck"); err == nil {
		t.Fatal("want error when both -enable and -disable are set")
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	f()
	w.Close()
	return <-done
}

func TestRunListShowsAllAnalyzers(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = run([]string{"-list"}) })
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{
		"determinism", "telemetry", "floatcompare", "goroutine", "panicpolicy",
		"errcheck", "units", "hotalloc", "mutexcopy", "lockorder", "chanleak",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output lacks analyzer %q", name)
		}
	}
}

func TestRunRejectsUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-enable", "no-such-analyzer", "./..."}); code != 2 {
		t.Fatalf("unknown -enable exit = %d, want 2", code)
	}
	if code := run([]string{"-enable", "units", "-disable", "errcheck", "./..."}); code != 2 {
		t.Fatalf("conflicting flags exit = %d, want 2", code)
	}
}
