// Command testbed runs the hardware-testbed experiments of Section VII-A
// on the simulated substrate and prints the series behind Figures 2–5.
//
// Usage:
//
//	testbed -fig 2               # response time of all 8 apps
//	testbed -fig 3               # workload-step run: controlled vs static
//	testbed -fig 4               # concurrency sweep 30..80
//	testbed -fig 5               # set point sweep 600..1300 ms
//	testbed -fig all -format csv # everything, machine-readable
//	testbed -trace out.json      # integrated traced run, Chrome-trace JSON
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/report"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/testbed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("testbed: ")
	var (
		fig    = flag.String("fig", "all", "which figure to regenerate: 2, 3, 4, 5, or all")
		apps   = flag.Int("apps", 8, "number of two-tier applications")
		srv    = flag.Int("servers", 4, "number of physical servers")
		conc   = flag.Int("concurrency", 40, "baseline concurrency level")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "text", "output format: text, csv, or markdown")
		trace  = flag.String("trace", "", "run the integrated two-level system and write a Chrome-trace JSON to this file")
	)
	flag.Parse()

	cfg := testbed.DefaultConfig()
	cfg.NumApps = *apps
	cfg.NumServers = *srv
	cfg.Concurrency = *conc
	cfg.Seed = *seed

	if *trace != "" {
		if err := tracedRun(cfg, *trace); err != nil {
			log.Fatalf("traced run: %v", err)
		}
		return
	}

	emit := func(t *report.Table) {
		if err := t.Format(os.Stdout, *format); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("2") {
		rows, err := testbed.Fig2(cfg)
		if err != nil {
			log.Fatalf("figure 2: %v", err)
		}
		t := report.New("Figure 2: response time of all applications (set point 1000 ms)",
			"app", "mean_ms", "std_ms")
		for _, r := range rows {
			t.AddRow(r.Label, r.Mean*1000, r.Std*1000)
		}
		emit(t)
	}
	if want("3") {
		controlled, err := testbed.Fig3(cfg)
		if err != nil {
			log.Fatalf("figure 3: %v", err)
		}
		static, err := testbed.Fig3Static(cfg)
		if err != nil {
			log.Fatalf("figure 3 baseline: %v", err)
		}
		t := report.New(
			fmt.Sprintf("Figure 3: %s under a workload step (concurrency %d→%d during 600–1200 s)",
				controlled.AppLabel, cfg.Concurrency, 2*cfg.Concurrency),
			"time_s", "controlled_resp_ms", "static_resp_ms", "controlled_power_W")
		for i := range controlled.ResponseTime {
			if i%5 != 0 { // decimate for readability
				continue
			}
			staticMS := ""
			if i < len(static.ResponseTime) {
				staticMS = fmt.Sprintf("%.0f", static.ResponseTime[i].Value*1000)
			}
			t.AddRow(
				fmt.Sprintf("%.0f", controlled.ResponseTime[i].Time),
				fmt.Sprintf("%.0f", controlled.ResponseTime[i].Value*1000),
				staticMS,
				fmt.Sprintf("%.1f", controlled.Power[i].Value),
			)
		}
		emit(t)
		fmt.Printf("surge-window violation rate (>1.5× set point, t∈[800,1200)): controlled %.0f%%, static %.0f%%\n\n",
			100*violRate(controlled, cfg.Setpoint), 100*violRate(static, cfg.Setpoint))
	}
	if want("4") {
		rows, err := testbed.Fig4(cfg, []int{30, 40, 50, 60, 70, 80})
		if err != nil {
			log.Fatalf("figure 4: %v", err)
		}
		t := report.New("Figure 4: response time of App5 under different workloads",
			"workload", "mean_ms", "std_ms")
		for _, r := range rows {
			t.AddRow(r.Label, r.Mean*1000, r.Std*1000)
		}
		emit(t)
	}
	if want("5") {
		rows, err := testbed.Fig5(cfg, []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3})
		if err != nil {
			log.Fatalf("figure 5: %v", err)
		}
		t := report.New("Figure 5: response time of App5 under different set points",
			"set_point", "mean_ms", "std_ms")
		for _, r := range rows {
			t.AddRow(r.Label, r.Mean*1000, r.Std*1000)
		}
		emit(t)
	}
}

// tracedRun drives the full two-level system — MPC controllers, server
// arbitrators, and IPAC consolidation — with the span recorder attached,
// then writes the recording as Chrome-trace JSON. Spans run on the
// simulation clock, so repeated runs with one seed are byte-identical.
func tracedRun(cfg testbed.Config, path string) error {
	tb, err := testbed.New(cfg)
	if err != nil {
		return err
	}
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 20, cluster.DefaultMigrationModel()); err != nil {
		return err
	}
	tr := tb.AttachTelemetry(0, nil)
	if _, err := tb.Run(600, nil); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	recs := tr.Snapshot()
	if err := telemetry.WriteChromeTrace(f, recs); err != nil {
		//lint:ignore errcheck the write error is already being returned
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d span events (%d dropped) to %s\n", len(recs), tr.Dropped(), path)
	return nil
}

// violRate computes the fraction of late-surge samples above 1.5× the
// set point.
func violRate(res *testbed.Fig3Result, setpoint float64) float64 {
	viol, n := 0, 0
	for _, p := range res.ResponseTime {
		if p.Time >= 800 && p.Time < 1200 {
			n++
			if p.Value > setpoint*1.5 {
				viol++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(viol) / float64(n)
}
