// Command tracegen synthesizes a data-center CPU utilization trace with
// the dimensions of the paper's source trace (5,415 servers, 15-minute
// samples, 7 days) and writes it as CSV or gob.
//
// Usage:
//
//	tracegen -vms 5415 -days 7 -seed 2008 -out trace.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vdcpower/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		vms  = flag.Int("vms", 5415, "number of VM utilization series")
		days = flag.Int("days", 7, "trace length in days")
		sph  = flag.Int("steps-per-hour", 4, "samples per hour (4 = 15-minute sampling)")
		seed = flag.Int64("seed", 2008, "generator seed")
		out  = flag.String("out", "", "output file (.csv or .gob); empty prints a summary only")
	)
	flag.Parse()

	tr, err := workload.Generate(workload.GenConfig{
		NumVMs: *vms, Days: *days, StepsPerHour: *sph, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated trace: %d VMs × %d steps (%.0f s/step), peak/mean load %.2f\n",
		tr.NumVMs(), tr.NumSteps(), tr.StepSeconds, tr.PeakToMean())
	for _, row := range tr.SectorBreakdown() {
		fmt.Printf("  %s\n", row)
	}

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case strings.HasSuffix(*out, ".csv"):
		err = tr.WriteCSV(f)
	case strings.HasSuffix(*out, ".gob"):
		err = tr.WriteGob(f)
	default:
		log.Fatalf("unknown extension on %q (want .csv or .gob)", *out)
	}
	if err != nil {
		log.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
}
