package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vdcpower/internal/bench"
)

// repoRoot locates the module root so the lint scenario and relative
// file paths behave as they would when vdcbench runs from the checkout.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

func TestListMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"fig2/response-time", "fig6/chaos", "mpc/solve", "lint/module"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q", name)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-scale", "huge"},
		{"-scenarios", "("},
		{"-scenarios", "no/such"},
		{"-slowdown", "mpc/solve"},    // missing =factor
		{"-slowdown", "mpc/solve=1"},  // factor < 2
		{"-slowdown", "no/such=2"},    // unknown scenario
		{"-compare", "only-one.json"}, // one file
		{"stray-positional.json"},     // positional without -compare
		{"-no-such-flag"},             // flag error
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%q) = %d, want exit 2 (stderr: %s)", args, code, errOut.String())
		}
	}
	// Compare against missing files is a runtime failure, not usage.
	var out, errOut strings.Builder
	if code := run([]string{"-compare", "missing-a.json", "missing-b.json"}, &out, &errOut); code != 1 {
		t.Errorf("compare with missing files = %d, want 1", code)
	}
}

// TestSessionCompareAndSlowdownGate is the acceptance path end to end:
// run a scenario subset twice, compare (zero regressions), then rerun
// with an injected 2x slowdown and watch the gate go nonzero.
func TestSessionCompareAndSlowdownGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmark scenarios")
	}
	dir := t.TempDir()
	root := repoRoot(t)
	base := filepath.Join(dir, "BENCH_a.json")
	again := filepath.Join(dir, "BENCH_b.json")
	slow := filepath.Join(dir, "BENCH_slow.json")
	common := []string{"-scale", "quick", "-reps", "8", "-warmup", "1",
		"-scenarios", "mpc/solve|packing/.*", "-module-root", root}

	for _, tc := range []struct{ path, slowdown string }{
		{base, ""}, {again, ""}, {slow, "mpc/solve=2"},
	} {
		args := append([]string{}, common...)
		args = append(args, "-label", filepath.Base(tc.path), "-out", tc.path)
		if tc.slowdown != "" {
			args = append(args, "-slowdown", tc.slowdown)
		}
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("session %s: exit %d\nstderr: %s", tc.path, code, errOut.String())
		}
	}

	doc, err := bench.ReadFile(base)
	if err != nil {
		t.Fatalf("session output does not validate: %v", err)
	}
	if doc.Scale != "quick" || doc.Reps != 8 || len(doc.Scenarios) != 3 {
		t.Errorf("session doc header wrong: %+v", doc)
	}
	if doc.CreatedAt == "" || doc.GoVersion == "" {
		t.Error("driver did not stamp CreatedAt/GoVersion")
	}

	// Two same-binary runs: no regressions, exit 0. Since the hot
	// scenarios went allocation-free their ops are ~0.2ms, small enough
	// that scheduler/frequency jitter between two back-to-back sessions
	// can exceed the 20% same-machine default — compare at 80% here;
	// the 2x-slowdown gate below still runs at the defaults.
	var out, errOut strings.Builder
	if code := run([]string{"-compare", "-threshold", "0.8", base, again}, &out, &errOut); code != 0 {
		t.Errorf("same-binary compare exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 regressed") {
		t.Errorf("same-binary compare found regressions:\n%s", out.String())
	}

	// The 2x slowdown must be flagged, and only on the slowed scenario.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-compare", base, slow}, &out, &errOut); code != 1 {
		t.Errorf("slowdown compare exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 regressed") || !strings.Contains(errOut.String(), "regression(s)") {
		t.Errorf("2x slowdown not flagged:\n%s%s", out.String(), errOut.String())
	}
}

func TestProfilingWritesPerScenarioFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmark scenarios")
	}
	dir := t.TempDir()
	prof := filepath.Join(dir, "prof")
	var out, errOut strings.Builder
	code := run([]string{"-scale", "quick", "-reps", "2", "-warmup", "-1",
		"-scenarios", "packing/ffd", "-out", filepath.Join(dir, "BENCH_p.json"),
		"-cpuprofile", prof, "-memprofile", prof}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"packing_ffd.cpu.pprof", "packing_ffd.mem.pprof"} {
		st, err := os.Stat(filepath.Join(prof, name))
		if err != nil {
			t.Errorf("profile missing: %v", err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

func TestBaselineMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmark scenarios")
	}
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := repoRoot(t)
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errOut strings.Builder
	code := run([]string{"-baseline", "-scale", "quick", "-reps", "2", "-warmup", "-1",
		"-scenarios", "packing/minslack", "-module-root", root}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	doc, err := bench.ReadFile(filepath.Join(dir, BaselineFile))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Label != "baseline" {
		t.Errorf("baseline label = %q", doc.Label)
	}
	if doc.CreatedAt != "" || doc.GoVersion != "" {
		t.Error("baseline mode must not stamp volatile fields (CreatedAt/GoVersion)")
	}
}

func TestParseSlowdown(t *testing.T) {
	name, factor, err := parseSlowdown("mpc/solve=3")
	if err != nil || name != "mpc/solve" || factor != 3 {
		t.Errorf("parseSlowdown = %q/%d/%v", name, factor, err)
	}
	if name, factor, err := parseSlowdown(""); err != nil || name != "" || factor != 0 {
		t.Errorf("empty slowdown = %q/%d/%v", name, factor, err)
	}
	for _, bad := range []string{"x", "mpc/solve=zero", "mpc/solve=0", "no/such=2"} {
		if _, _, err := parseSlowdown(bad); err == nil {
			t.Errorf("parseSlowdown(%q) accepted", bad)
		}
	}
}

func TestMetricsLine(t *testing.T) {
	if got := metricsLine(nil); got != "" {
		t.Errorf("metricsLine(nil) = %q", got)
	}
	got := metricsLine(map[string]float64{"b-key": 2, "a-key": 1.5})
	if got != "a-key=1.5 b-key=2" {
		t.Errorf("metricsLine = %q", got)
	}
}
