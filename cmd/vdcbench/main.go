// Command vdcbench runs the internal/bench scenario registry — the same
// scenarios the root `go test -bench` adapters time — with warmup,
// repeated measured reps and robust statistics, and writes the session
// as a versioned BENCH_<label>.json. In compare mode it classifies two
// result files scenario-by-scenario as improved/regressed/unchanged and
// exits nonzero on any regression: the perf gate CI runs on every change.
//
// Usage:
//
//	vdcbench -list
//	vdcbench -label dev -out BENCH_dev.json
//	vdcbench -scale quick -reps 8 -scenarios 'fig6/.*'
//	vdcbench -baseline                      # (re)writes BENCH_baseline.json
//	vdcbench -compare -threshold 0.2 BENCH_baseline.json BENCH_dev.json
//	vdcbench -slowdown mpc/solve=2 -out slow.json   # gate self-test
//	vdcbench -cpuprofile prof/ -scenarios mpc/solve
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"vdcpower/internal/bench"
)

// BaselineFile is the committed baseline the -baseline mode maintains.
const BaselineFile = "BENCH_baseline.json"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected, so tests can drive the whole
// driver in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vdcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list registered scenarios and exit")
		pattern    = fs.String("scenarios", "", "anchored regexp selecting scenarios to run (empty = all)")
		scaleStr   = fs.String("scale", string(bench.ScaleFull), "fixture scale: full or quick")
		reps       = fs.Int("reps", bench.DefaultReps, "measured repetitions per scenario")
		warmup     = fs.Int("warmup", bench.DefaultWarmup, "unmeasured warmup runs per scenario (negative = none)")
		label      = fs.String("label", "dev", "session label stamped into the result document")
		out        = fs.String("out", "", "output file (default BENCH_<label>.json)")
		baseline   = fs.Bool("baseline", false, "write the committed baseline ("+BaselineFile+") instead of -out")
		compare    = fs.Bool("compare", false, "compare two result files: vdcbench -compare OLD.json NEW.json")
		threshold  = fs.Float64("threshold", bench.DefaultThresholds().MinShift, "minimum relative median shift that can classify as a change")
		alpha      = fs.Float64("alpha", bench.DefaultThresholds().Alpha, "Mann-Whitney significance level")
		gateAllocs = fs.Bool("gate-allocs", false, "with -compare: also gate on allocs/op regressions")
		slowdown   = fs.String("slowdown", "", "name=factor: run the named scenario's op factor times (gate self-test)")
		cpuProfile = fs.String("cpuprofile", "", "directory for per-scenario CPU profiles of the measured reps")
		memProfile = fs.String("memprofile", "", "directory for per-scenario heap profiles taken after the measured reps")
		moduleRoot = fs.String("module-root", ".", "directory inside the module the lint scenario analyzes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *compare {
		return runCompare(fs.Args(), bench.Thresholds{MinShift: *threshold, Alpha: *alpha, GateAllocs: *gateAllocs}, stdout, stderr)
	}
	if len(fs.Args()) != 0 {
		printf(stderr, "vdcbench: unexpected arguments %q (file arguments belong to -compare)\n", fs.Args())
		return 2
	}

	registry := bench.Default()
	if *list {
		for _, sc := range registry.All() {
			printf(stdout, "%-26s %s\n", sc.Name, sc.Doc)
		}
		return 0
	}

	scale, err := bench.ParseScale(*scaleStr)
	if err != nil {
		printf(stderr, "vdcbench: %v\n", err)
		return 2
	}
	scenarios, err := registry.Match(*pattern)
	if err != nil {
		printf(stderr, "vdcbench: %v\n", err)
		return 2
	}
	slowName, slowFactor, err := parseSlowdown(*slowdown)
	if err != nil {
		printf(stderr, "vdcbench: %v\n", err)
		return 2
	}
	for _, dir := range []string{*cpuProfile, *memProfile} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				printf(stderr, "vdcbench: %v\n", err)
				return 1
			}
		}
	}

	env := bench.NewEnv(scale)
	env.SetModuleRoot(*moduleRoot)
	doc := &bench.Doc{
		Schema:    bench.SchemaVersion,
		Label:     *label,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     string(scale),
		Warmup:    *warmup,
		Reps:      *reps,
	}
	if *baseline {
		doc.Label = "baseline"
		doc.CreatedAt = "" // the committed baseline must diff only when results change
		doc.GoVersion = ""
	}

	for _, sc := range scenarios {
		if sc.Name == slowName {
			sc = bench.WithSlowdown(sc, slowFactor)
			printf(stdout, "%-26s applying x%d slowdown\n", sc.Name, slowFactor)
		}
		opt := bench.Options{Warmup: *warmup, Reps: *reps}
		if err := attachProfiling(&opt, sc.Name, *cpuProfile, *memProfile); err != nil {
			printf(stderr, "vdcbench: %v\n", err)
			return 1
		}
		res, err := bench.Measure(sc, env, opt)
		if err != nil {
			printf(stderr, "vdcbench: %v\n", err)
			return 1
		}
		printf(stdout, "%-26s %11.3fms ±%.3fms  [%0.3f, %0.3f]  %s\n",
			res.Name, res.MedianNs/1e6, res.MADNs/1e6, res.CI95LoNs/1e6, res.CI95HiNs/1e6, metricsLine(res.Metrics))
		doc.Scenarios = append(doc.Scenarios, res)
	}

	path := *out
	if *baseline {
		path = BaselineFile
	} else if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if err := doc.WriteFile(path); err != nil {
		printf(stderr, "vdcbench: %v\n", err)
		return 1
	}
	printf(stdout, "wrote %s (%d scenarios, scale %s, %d reps)\n", path, len(doc.Scenarios), doc.Scale, doc.Reps)
	return 0
}

// runCompare loads two result documents and renders the verdict,
// returning 1 when any scenario regressed.
func runCompare(files []string, th bench.Thresholds, stdout, stderr io.Writer) int {
	if len(files) != 2 {
		printlnf(stderr, "vdcbench: -compare wants exactly two files: OLD.json NEW.json")
		return 2
	}
	oldDoc, err := bench.ReadFile(files[0])
	if err != nil {
		printf(stderr, "vdcbench: %v\n", err)
		return 1
	}
	newDoc, err := bench.ReadFile(files[1])
	if err != nil {
		printf(stderr, "vdcbench: %v\n", err)
		return 1
	}
	c, err := bench.Compare(oldDoc, newDoc, th)
	if err != nil {
		printf(stderr, "vdcbench: %v\n", err)
		return 1
	}
	if err := c.WriteText(stdout); err != nil {
		printf(stderr, "vdcbench: %v\n", err)
		return 1
	}
	if regs := c.Regressions(); len(regs) > 0 {
		printf(stderr, "vdcbench: %d regression(s) against %s\n", len(regs), files[0])
		return 1
	}
	return 0
}

// parseSlowdown parses the -slowdown flag's name=factor form.
func parseSlowdown(s string) (string, int, error) {
	if s == "" {
		return "", 0, nil
	}
	name, factorStr, ok := strings.Cut(s, "=")
	if !ok {
		return "", 0, fmt.Errorf("bad -slowdown %q: want name=factor", s)
	}
	factor, err := strconv.Atoi(factorStr)
	if err != nil || factor < 2 {
		return "", 0, fmt.Errorf("bad -slowdown factor %q: want an integer >= 2", factorStr)
	}
	if _, ok := bench.Default().Get(name); !ok {
		return "", 0, fmt.Errorf("bad -slowdown scenario %q: not in the registry", name)
	}
	return name, factor, nil
}

// attachProfiling hangs CPU/heap profiling off the sampler's timed-reps
// hooks, so profiles cover measured work only — never Prepare or warmup.
func attachProfiling(opt *bench.Options, name, cpuDir, memDir string) error {
	stem := strings.ReplaceAll(name, "/", "_")
	if cpuDir != "" {
		path := filepath.Join(cpuDir, stem+".cpu.pprof")
		var f *os.File
		opt.BeforeTimed = func() error {
			var err error
			if f, err = os.Create(path); err != nil {
				return err
			}
			return pprof.StartCPUProfile(f)
		}
		prevAfter := opt.AfterTimed
		opt.AfterTimed = func() {
			pprof.StopCPUProfile()
			//lint:ignore errcheck a truncated CPU profile is diagnostic-only, never data loss
			f.Close()
			if prevAfter != nil {
				prevAfter()
			}
		}
	}
	if memDir != "" {
		path := filepath.Join(memDir, stem+".mem.pprof")
		prevAfter := opt.AfterTimed
		opt.AfterTimed = func() {
			if prevAfter != nil {
				prevAfter()
			}
			f, err := os.Create(path)
			if err != nil {
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			//lint:ignore errcheck a failed heap profile is diagnostic-only
			pprof.WriteHeapProfile(f)
			//lint:ignore errcheck see above
			f.Close()
		}
	}
	return nil
}

// printf and printlnf write best-effort diagnostics to the injected
// stream; the process exit code is the command's real output channel.
func printf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func printlnf(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

// metricsLine renders a scenario's headline metrics compactly.
func metricsLine(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	keys := bench.Metrics(m).Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.4g", k, m[k]))
	}
	return strings.Join(parts, " ")
}
