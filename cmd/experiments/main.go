// Command experiments reproduces the paper's entire evaluation in one
// invocation and writes a results directory: one CSV per figure plus a
// summary.md with the headline comparisons. This is the "reproduce
// everything" entry point referenced by EXPERIMENTS.md.
//
//	experiments -out results/           # full scale (~1 min)
//	experiments -out results/ -quick    # reduced scale (~15 s)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vdcpower/internal/dcsim"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/report"
	"vdcpower/internal/testbed"
	"vdcpower/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		out   = flag.String("out", "results", "output directory")
		quick = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	summary := report.New("vdcpower experiment summary", "experiment", "headline result")

	cfg := testbed.DefaultConfig()
	cfg.Seed = *seed
	sizes := []int{30, 230, 1030, 2030, 3030, 4030, 5415}
	traceVMs, traceDays := 5415, 7
	concLevels := []int{30, 40, 50, 60, 70, 80}
	setpoints := []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3}
	if *quick {
		cfg.NumApps, cfg.NumServers = 4, 2
		sizes = []int{30, 230, 1030}
		traceVMs, traceDays = 1030, 2
		concLevels = []int{30, 50, 80}
		setpoints = []float64{0.6, 1.0, 1.3}
	}

	writeCSV := func(name string, t *report.Table) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n", path)
	}

	// --- Figure 2 ---
	fmt.Println("figure 2: response time of all applications...")
	rows2, err := testbed.Fig2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t2 := report.New("", "app", "mean_ms", "std_ms")
	worst := 0.0
	for _, r := range rows2 {
		t2.AddRow(r.Label, fmt.Sprintf("%.0f", r.Mean*1000), fmt.Sprintf("%.0f", r.Std*1000))
		if d := abs(r.Mean - cfg.Setpoint); d > worst {
			worst = d
		}
	}
	writeCSV("fig2_response_times.csv", t2)
	summary.AddRow("Fig 2", fmt.Sprintf("all %d apps within %.0f ms of the 1000 ms set point", len(rows2), worst*1000))

	// --- Figure 3 (controlled + static baseline) ---
	fmt.Println("figure 3: workload surge (controlled vs static)...")
	f3, err := testbed.Fig3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f3s, err := testbed.Fig3Static(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t3 := report.New("", "time_s", "controlled_ms", "static_ms", "power_W")
	for i := range f3.ResponseTime {
		staticMS := ""
		if i < len(f3s.ResponseTime) {
			staticMS = fmt.Sprintf("%.0f", f3s.ResponseTime[i].Value*1000)
		}
		t3.AddRow(
			fmt.Sprintf("%.0f", f3.ResponseTime[i].Time),
			fmt.Sprintf("%.0f", f3.ResponseTime[i].Value*1000),
			staticMS,
			fmt.Sprintf("%.1f", f3.Power[i].Value))
	}
	writeCSV("fig3_surge.csv", t3)
	summary.AddRow("Fig 3", fmt.Sprintf("surge violation rate: controlled %.0f%%, static %.0f%%",
		100*lateViolRate(f3, cfg.Setpoint), 100*lateViolRate(f3s, cfg.Setpoint)))

	// --- Figure 4 ---
	fmt.Println("figure 4: concurrency sweep...")
	rows4, err := testbed.Fig4(cfg, concLevels)
	if err != nil {
		log.Fatal(err)
	}
	t4 := report.New("", "workload", "mean_ms", "std_ms")
	for _, r := range rows4 {
		t4.AddRow(r.Label, fmt.Sprintf("%.0f", r.Mean*1000), fmt.Sprintf("%.0f", r.Std*1000))
	}
	writeCSV("fig4_concurrency.csv", t4)
	summary.AddRow("Fig 4", fmt.Sprintf("set point held across %d concurrency levels", len(rows4)))

	// --- Figure 5 ---
	fmt.Println("figure 5: set point sweep...")
	rows5, err := testbed.Fig5(cfg, setpoints)
	if err != nil {
		log.Fatal(err)
	}
	t5 := report.New("", "set_point", "mean_ms", "std_ms")
	for _, r := range rows5 {
		t5.AddRow(r.Label, fmt.Sprintf("%.0f", r.Mean*1000), fmt.Sprintf("%.0f", r.Std*1000))
	}
	writeCSV("fig5_setpoints.csv", t5)
	summary.AddRow("Fig 5", fmt.Sprintf("tracking across %d set points (600–1300 ms)", len(rows5)))

	// --- Figure 6 ---
	fmt.Printf("figure 6: energy per VM, %d VMs × %d days...\n", traceVMs, traceDays)
	tr, err := workload.Generate(workload.GenConfig{NumVMs: traceVMs, Days: traceDays, StepsPerHour: 4, Seed: 2008})
	if err != nil {
		log.Fatal(err)
	}
	points, err := dcsim.Fig6Parallel(tr, sizes, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
		func() optimizer.Consolidator { return optimizer.WithoutDVFS{Inner: optimizer.NewIPAC()} },
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	t6 := report.New("", "vms", "ipac_wh", "pmapper_wh", "ipac_nodvfs_wh", "saving_pct")
	meanSaving := 0.0
	for _, p := range points {
		s := 1 - p.PerVMWh["IPAC"]/p.PerVMWh["pMapper"]
		meanSaving += s
		t6.AddRow(p.NumVMs,
			fmt.Sprintf("%.1f", p.PerVMWh["IPAC"]),
			fmt.Sprintf("%.1f", p.PerVMWh["pMapper"]),
			fmt.Sprintf("%.1f", p.PerVMWh["IPAC-noDVFS"]),
			fmt.Sprintf("%.1f", 100*s))
	}
	meanSaving /= float64(len(points))
	writeCSV("fig6_energy_per_vm.csv", t6)
	summary.AddRow("Fig 6", fmt.Sprintf("IPAC saves %.1f%% vs pMapper on average (paper: 40.7%%)", 100*meanSaving))

	// --- summary ---
	sf, err := os.Create(filepath.Join(*out, "summary.md"))
	if err != nil {
		log.Fatal(err)
	}
	if err := summary.WriteMarkdown(sf); err != nil {
		log.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n", filepath.Join(*out, "summary.md"))
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Second))
	_ = summary.WriteText(os.Stdout)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func lateViolRate(res *testbed.Fig3Result, setpoint float64) float64 {
	viol, n := 0, 0
	for _, p := range res.ResponseTime {
		if p.Time >= 800 && p.Time < 1200 {
			n++
			if p.Value > setpoint*1.5 {
				viol++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(viol) / float64(n)
}
