// Command dcsim runs the large-scale data-center simulation of Section
// VI-B / VII-B and prints the Figure 6 comparison: energy per VM over the
// trace horizon for IPAC and pMapper (and optional ablations) across
// data-center sizes. Runs fan out over a worker pool.
//
// Usage:
//
//	dcsim -sizes 30,430,1030,2030,3030,4030,5415 -days 7
//	dcsim -workload trace.gob -sizes 1030 -ablations -format csv
//	dcsim -trace out.json -sizes 230        # Chrome-trace span recording
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"encoding/json"

	"vdcpower/internal/check"
	"vdcpower/internal/cluster"
	"vdcpower/internal/dcsim"
	"vdcpower/internal/fault"
	"vdcpower/internal/obs"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/report"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/trace"
	"vdcpower/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcsim: ")
	var (
		workloadP = flag.String("workload", "", "workload trace file (.gob or .csv); generated if empty")
		replayP   = flag.String("replay", "", "replay spec JSON (see internal/trace.ReplaySpec): build the workload by deterministically replaying a real-trace corpus, with any distortions the spec lists")
		traceOut  = flag.String("trace", "", "write a Chrome-trace JSON recording of the run's spans to this file (the workload input flag is -workload)")
		sizesStr  = flag.String("sizes", "30,230,1030,2030,3030,4030,5415", "comma-separated data-center sizes (number of VMs)")
		days      = flag.Int("days", 7, "days to generate when no trace file is given")
		vms       = flag.Int("vms", 5415, "VMs to generate when no trace file is given")
		seed      = flag.Int64("seed", 2008, "generator seed")
		ablations = flag.Bool("ablations", false, "also run IPAC-noDVFS and static+DVFS")
		workers   = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		format    = flag.String("format", "text", "output format: text, csv, or markdown")
		series    = flag.Int("series", 0, "instead of the sweep, dump a per-step power/active/demand series for a run with this many VMs")
		snapshot  = flag.String("snapshot", "", "with -series: write the final data-center state as JSON to this file")
		checkRun  = flag.Bool("check", false, "run a Fig. 6 subset with every runtime invariant enabled and report violations")
		faultsP   = flag.String("faults", "", "fault-injection profile JSON (see internal/fault); every run gets its own deterministic injector; the serve and guard classes only fire in the period-driven harnesses (cmd/serve)")
		reportP   = flag.String("report", "", "with -check: also write a machine-readable JSON verification report to this file")
		obsOut    = flag.String("obs", "", "write a controller-health scorecard (schema vdcobs/v1) aggregated across all runs as JSON to this file")
	)
	flag.Parse()

	// The aggregate scorecard, when requested. Every run observes into
	// its own per-run scorecard with the same SLO geometry; the runs
	// merge here in fixed order, so the document is deterministic for a
	// fixed seed regardless of worker scheduling.
	var scorecard *obs.Scorecard
	if *obsOut != "" {
		scorecard = obs.New(obs.Config{
			Label:      "dcsim",
			SLOBudget:  0.05, // 5% of steps may see an active-server overload
			FastWindow: 8,    // 2 simulated hours at 4 steps/hour
			SlowWindow: 64,   // 16 simulated hours
		})
	}

	var prof *fault.Profile
	if *faultsP != "" {
		p, err := fault.LoadProfile(*faultsP)
		if err != nil {
			log.Fatal(err)
		}
		prof = &p
	}

	if *traceOut != "" {
		if err := validateTraceOut(*traceOut); err != nil {
			log.Fatal(err)
		}
	}

	if *checkRun {
		// Verification mode defaults to a small subset unless sizes/days
		// were given explicitly.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["sizes"] {
			*sizesStr = "30,230"
		}
		if !explicit["days"] {
			*days = 2
		}
		if !explicit["vms"] {
			*vms = 300
		}
	}

	var sizes []int
	for _, s := range strings.Split(*sizesStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad size %q: %v", s, err)
		}
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)

	var (
		tr   *workload.Trace
		prov *trace.Provenance
		err  error
	)
	if *replayP != "" {
		if *workloadP != "" {
			log.Fatal("-replay and -workload are mutually exclusive")
		}
		sp, err := trace.LoadSpec(*replayP)
		if err != nil {
			log.Fatal(err)
		}
		if tr, prov, err = sp.Build(); err != nil {
			log.Fatal(err)
		}
		scorecard.SetProvenance(obsProvenance(prov))
		fmt.Printf("replayed %s: %d records, %d distorted\n", prov.Source, prov.Records, prov.Distorted)
	} else if tr, err = loadOrGenerate(*workloadP, *vms, *days, *seed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d VMs × %d steps (%.0f s/step), peak/mean load %.2f\n\n",
		tr.NumVMs(), tr.NumSteps(), tr.StepSeconds, tr.PeakToMean())

	// The span recorder, when requested. Runs drive tracks on logical
	// sim time (dcsim.Run calls SetTime each step), so no clock is
	// injected here.
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.New(nil, 0)
	}

	if *checkRun {
		if err := runChecked(tr, sizes, tracer, prof, *reportP, scorecard, prov); err != nil {
			log.Fatal(err)
		}
		if err := writeTrace(tracer, *traceOut); err != nil {
			log.Fatal(err)
		}
		if err := writeScorecard(scorecard, *obsOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *series > 0 {
		t := report.New("per-step series (IPAC)", "step", "hour", "power_W", "active_servers", "demand_GHz")
		cfg := dcsim.DefaultConfig(tr, *series, optimizer.NewIPAC())
		cfg.Telemetry = tracer.Track("main")
		cfg.Obs = scorecard
		if prof != nil {
			cfg.Faults = fault.New(*prof)
		}
		cfg.OnStep = func(k int, powerW float64, active int, demand float64) {
			t.AddRow(k, fmt.Sprintf("%.2f", float64(k)*tr.StepSeconds/3600),
				fmt.Sprintf("%.1f", powerW), active, fmt.Sprintf("%.1f", demand))
		}
		if *snapshot != "" {
			cfg.OnDone = func(dc *cluster.DataCenter) {
				f, err := os.Create(*snapshot)
				if err != nil {
					log.Fatal(err)
				}
				if err := dc.Snapshot().WriteJSON(f); err != nil {
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(os.Stderr, "wrote final state to %s\n", *snapshot)
			}
		}
		if _, err := dcsim.Run(cfg); err != nil {
			log.Fatal(err)
		}
		if err := t.Format(os.Stdout, *format); err != nil {
			log.Fatal(err)
		}
		if err := writeTrace(tracer, *traceOut); err != nil {
			log.Fatal(err)
		}
		if err := writeScorecard(scorecard, *obsOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	policies := []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
	}
	if *ablations {
		policies = append(policies,
			func() optimizer.Consolidator { return optimizer.WithoutDVFS{Inner: optimizer.NewIPAC()} },
			func() optimizer.Consolidator { return optimizer.NoOp{DVFS: true} },
		)
	}
	var names []string
	for _, mk := range policies {
		names = append(names, mk().Name())
	}

	points, err := dcsim.Fig6Sweep(tr, sizes, policies, dcsim.SweepOptions{Workers: *workers, Tracer: tracer, FaultProfile: prof, Obs: scorecard})
	if err != nil {
		log.Fatal(err)
	}
	if err := writeTrace(tracer, *traceOut); err != nil {
		log.Fatal(err)
	}
	if err := writeScorecard(scorecard, *obsOut); err != nil {
		log.Fatal(err)
	}

	headers := append([]string{"VMs"}, names...)
	headers = append(headers, "IPAC_saving_pct")
	t := report.New("Figure 6: energy per VM (Wh) over the trace horizon", headers...)
	var savings []float64
	for _, p := range points {
		row := []any{p.NumVMs}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.1f", p.PerVMWh[n]))
		}
		s := 1 - p.PerVMWh["IPAC"]/p.PerVMWh["pMapper"]
		savings = append(savings, s)
		row = append(row, fmt.Sprintf("%.1f", 100*s))
		t.AddRow(row...)
	}
	if err := t.Format(os.Stdout, *format); err != nil {
		log.Fatal(err)
	}
	mean := 0.0
	for _, s := range savings {
		mean += s
	}
	mean /= float64(len(savings))
	fmt.Printf("\naverage IPAC saving vs pMapper: %.1f%% (paper reports 40.7%%)\n", mean*100)
}

// checkReport is the machine-readable verdict of a -check run (-report):
// CI jobs assert on violations and, under a fault profile, on a nonzero
// injected-fault count.
type checkReport struct {
	Invariants     int               `json:"invariants"`
	Violations     int               `json:"violations"`
	FaultsInjected int               `json:"faults_injected"`
	Replay         *trace.Provenance `json:"replay,omitempty"`
	Runs           []checkRunReport  `json:"runs"`
}

type checkRunReport struct {
	Policy         string  `json:"policy"`
	VMs            int     `json:"vms"`
	Events         int     `json:"events"`
	Violations     int     `json:"violations"`
	FaultsInjected int     `json:"faults_injected"`
	DegradedPasses int     `json:"degraded_passes"`
	Crashes        int     `json:"crashes"`
	EnergyPerVMWh  float64 `json:"energy_per_vm_wh"`
}

// runChecked reruns the Figure 6 comparison serially with the full
// invariant registry observing every run: cluster conservation laws,
// optimizer guarantees (with a cost-policy audit wired into each
// consolidator), energy accounting, and the fault-degradation laws. Each
// run gets its own injector built from prof (nil injects nothing), so
// chaos verification is reproducible run by run. Any violation is a fatal
// error; reportPath, when nonempty, additionally receives the JSON
// verdict.
func runChecked(tr *workload.Trace, sizes []int, tracer *telemetry.Tracer, prof *fault.Profile, reportPath string, scorecard *obs.Scorecard, prov *trace.Provenance) error {
	type checkedPolicy struct {
		name string
		mk   func() (optimizer.Consolidator, *check.PolicyAuditor)
	}
	policies := []checkedPolicy{
		{"IPAC", func() (optimizer.Consolidator, *check.PolicyAuditor) {
			o := optimizer.NewIPAC()
			aud := check.NewPolicyAuditor(o.Policy)
			o.Policy = aud
			return o, aud
		}},
		{"pMapper", func() (optimizer.Consolidator, *check.PolicyAuditor) {
			p := optimizer.NewPMapper()
			aud := check.NewPolicyAuditor(p.Policy)
			p.Policy = aud
			return p, aud
		}},
	}
	doc := checkReport{Invariants: len(check.All()) + 1, Replay: prov}
	for _, n := range sizes {
		for _, pol := range policies {
			cons, aud := pol.mk()
			checker := check.New(append(check.All(), check.VetoesRespected(aud))...)
			cfg := dcsim.DefaultConfig(tr, n, cons)
			cfg.WatchdogEverySteps = 4 // exercise the overload reliever too
			cfg.Checker = checker
			if prof != nil {
				cfg.Faults = fault.New(*prof)
			}
			// One track per run: tracks are sequential execution units,
			// and the checked sweep runs serially.
			cfg.Telemetry = tracer.Track(fmt.Sprintf("%s-%d", pol.name, n))
			if scorecard != nil {
				jc := scorecard.Config()
				jc.Label = fmt.Sprintf("%s/%d", pol.name, n)
				cfg.Obs = obs.New(jc)
			}
			res, err := dcsim.Run(cfg)
			if err != nil && checker.NumViolations() == 0 {
				return err
			}
			if scorecard != nil {
				if err := scorecard.Merge(cfg.Obs); err != nil {
					return fmt.Errorf("merging %s/%d scorecard: %w", pol.name, n, err)
				}
			}
			status := "ok"
			if checker.NumViolations() > 0 {
				status = "VIOLATIONS"
			}
			fmt.Printf("%-8s n=%-5d events=%-6d invariants=%d violations=%d faults=%-4d %s (%.1f Wh/VM)\n",
				pol.name, n, checker.Events(), len(check.All())+1, checker.NumViolations(), res.FaultsInjected, status, res.EnergyPerVMWh)
			for _, v := range checker.Violations() {
				fmt.Printf("    %s\n", v)
			}
			doc.Violations += checker.NumViolations()
			doc.FaultsInjected += res.FaultsInjected
			doc.Runs = append(doc.Runs, checkRunReport{
				Policy:         pol.name,
				VMs:            n,
				Events:         checker.Events(),
				Violations:     checker.NumViolations(),
				FaultsInjected: res.FaultsInjected,
				DegradedPasses: res.DegradedPasses,
				Crashes:        res.Crashes,
				EnergyPerVMWh:  res.EnergyPerVMWh,
			})
		}
	}
	if reportPath != "" {
		if err := writeReport(doc, reportPath); err != nil {
			return err
		}
	}
	if doc.Violations > 0 {
		return fmt.Errorf("%d invariant violation(s)", doc.Violations)
	}
	fmt.Println("\nall invariants held")
	return nil
}

// writeReport dumps the -check verdict as JSON.
func writeReport(doc checkReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		//lint:ignore errcheck the encode error is already being returned
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote verification report to %s\n", path)
	return nil
}

// writeScorecard dumps the aggregated controller-health scorecard as
// indented JSON; a nil scorecard (-obs not given) writes nothing.
func writeScorecard(sc *obs.Scorecard, path string) error {
	if sc == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sc.WriteJSON(f); err != nil {
		//lint:ignore errcheck the write error is already being returned
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rep := sc.Report()
	fmt.Fprintf(os.Stderr, "wrote controller-health scorecard to %s (SLO %s, %d/%d bad steps)\n",
		path, rep.SLO.Verdict, rep.SLO.Bad, rep.SLO.Good+rep.SLO.Bad)
	return nil
}

// obsProvenance converts the replay engine's provenance into the obs
// package's import-free mirror of it.
func obsProvenance(p *trace.Provenance) *obs.ReplayProvenance {
	if p == nil {
		return nil
	}
	out := &obs.ReplayProvenance{Source: p.Source, Seed: p.Seed, Records: p.Records, Distorted: p.Distorted}
	for _, d := range p.Distortions {
		out.Distortions = append(out.Distortions, obs.ReplayDistortion{Name: d.Name, Params: d.Params, Distorted: d.Distorted})
	}
	return out
}

// validateTraceOut guards the historical meaning of -trace (it used to
// name the workload input, now -workload): before running anything, the
// recording destination must be absent, empty, or a previous trace
// recording (which always starts with the '[' of the JSON array form).
// Anything else — a .gob/.csv workload, say — is refused rather than
// silently overwritten.
func validateTraceOut(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	//lint:ignore errcheck close error on a read-only file cannot lose data
	defer f.Close()
	var first [1]byte
	n, err := f.Read(first[:])
	if n == 0 && err == io.EOF {
		return nil // empty file: nothing to lose
	}
	if err != nil && err != io.EOF {
		return err
	}
	if first[0] == '[' {
		return nil // prior trace recording: overwriting is expected
	}
	return fmt.Errorf("-trace output %s exists and is not a previous trace recording; "+
		"-trace writes a Chrome-trace JSON — pass a workload input via -workload, "+
		"or choose a different -trace path", path)
}

// writeTrace dumps the recorded spans as Chrome-trace JSON; a nil tracer
// (tracing not requested) writes nothing.
func writeTrace(tr *telemetry.Tracer, path string) error {
	if tr == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	recs := tr.Snapshot()
	if err := telemetry.WriteChromeTrace(f, recs); err != nil {
		//lint:ignore errcheck the write error is already being returned
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d span events (%d dropped) to %s\n", len(recs), tr.Dropped(), path)
	return nil
}

func loadOrGenerate(path string, vms, days int, seed int64) (*workload.Trace, error) {
	if path == "" {
		fmt.Printf("generating synthetic trace (%d VMs, %d days, seed %d)...\n", vms, days, seed)
		return workload.Generate(workload.GenConfig{NumVMs: vms, Days: days, StepsPerHour: 4, Seed: seed})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck close error on a read-only file cannot lose data
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return workload.ReadCSV(f)
	}
	return workload.ReadGob(f)
}
