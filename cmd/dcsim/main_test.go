package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestValidateTraceOut covers the -trace overwrite guard: absent,
// empty, and prior-trace files are fine to (re)write; anything else —
// like a workload file from the days when -trace named the input — is
// refused instead of clobbered.
func TestValidateTraceOut(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if err := validateTraceOut(filepath.Join(dir, "absent.json")); err != nil {
		t.Errorf("absent file refused: %v", err)
	}
	if err := validateTraceOut(write("empty.json", "")); err != nil {
		t.Errorf("empty file refused: %v", err)
	}
	if err := validateTraceOut(write("prior.json", "[\n{\"name\":\"thread_name\"}\n]\n")); err != nil {
		t.Errorf("prior trace recording refused: %v", err)
	}
	if err := validateTraceOut(write("workload.gob", "\x1f\x8b\x00binary workload")); err == nil {
		t.Error("non-trace file accepted for overwrite")
	}
}
