package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGenBuildRoundTripIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.csv")
	if err := run([]string{"-gen", "google-usage", "-vms", "8", "-steps", "6", "-seed", "3",
		"-gap-prob", "0.05", "-out", corpus}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	spec := filepath.Join(dir, "spec.json")
	write(t, spec, `{"format":"google-usage","path":"corpus.csv","seed":7,
		"distortions":[{"kind":"flash-crowd","start_step":1,"steps":3,"amplify":1.5,"vm_fraction":0.5}]}`)

	build := func(stem string) ([]byte, []byte) {
		out := filepath.Join(dir, stem+".csv")
		prov := filepath.Join(dir, stem+".prov.json")
		var stdout bytes.Buffer
		if err := run([]string{"-spec", spec, "-out", out, "-provenance", prov}, &stdout); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(stdout.String(), "flash-crowd") {
			t.Fatalf("build summary lacks distortion provenance:\n%s", stdout.String())
		}
		return read(t, out), read(t, prov)
	}
	traceA, provA := build("a")
	traceB, provB := build("b")
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("same spec built different trace bytes")
	}
	if !bytes.Equal(provA, provB) {
		t.Fatal("same spec built different provenance bytes")
	}
	if !strings.Contains(string(provA), `"distorted"`) {
		t.Fatalf("provenance JSON lacks a distorted count:\n%s", provA)
	}
}

func TestGenGzipCorpusBuilds(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.csv.gz")
	if err := run([]string{"-gen", "azure-vm", "-vms", "5", "-steps", "4", "-gzip", "-out", corpus}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if b := read(t, corpus); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatal("-gzip corpus lacks the gzip magic")
	}
	spec := filepath.Join(dir, "spec.json")
	write(t, spec, `{"format":"azure-vm","path":"corpus.csv.gz","seed":1}`)
	out := filepath.Join(dir, "trace.csv")
	if err := run([]string{"-spec", spec, "-out", out}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if len(read(t, out)) == 0 {
		t.Fatal("built trace is empty")
	}
}

func TestPaceStreamsAllRecords(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.csv")
	if err := run([]string{"-gen", "google-usage", "-vms", "4", "-steps", "3", "-out", corpus}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	spec := filepath.Join(dir, "spec.json")
	write(t, spec, `{"format":"google-usage","path":"corpus.csv","seed":1,"speedup":1000000}`)
	out := filepath.Join(dir, "stream.csv")
	if err := run([]string{"-spec", spec, "-pace", "-out", out}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(read(t, out))), "\n")
	if len(lines) != 4*3 {
		t.Fatalf("streamed %d records, want %d", len(lines), 4*3)
	}
	for _, l := range lines {
		if parts := strings.Split(l, ","); len(parts) != 3 {
			t.Fatalf("malformed stream line %q", l)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no mode":      {},
		"bad gen":      {"-gen", "csv"},
		"missing spec": {"-spec", filepath.Join(t.TempDir(), "nope.json")},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}
