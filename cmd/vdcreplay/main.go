// Command vdcreplay drives the trace-replay subsystem: it fabricates
// schema-valid raw corpora in the public trace formats, and it builds
// (or live-streams) deterministic, optionally distorted replays of
// them as workload traces the simulators consume.
//
// Usage:
//
//	vdcreplay -gen google-usage -vms 40 -steps 12 -out corpus.csv
//	vdcreplay -gen azure-vm -vms 40 -steps 12 -gzip -out corpus.csv.gz
//	vdcreplay -spec replay.json -out trace.csv -provenance prov.json
//	vdcreplay -spec replay.json -pace            # stream records, paced
package main

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"vdcpower/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vdcreplay: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vdcreplay", flag.ContinueOnError)
	var (
		specP   = fs.String("spec", "", "replay spec JSON (see internal/trace.ReplaySpec)")
		out     = fs.String("out", "", "output file; empty prints a summary (build) or streams to stdout (-pace)")
		provP   = fs.String("provenance", "", "write replay provenance JSON to this file")
		pace    = fs.Bool("pace", false, "stream records against the wall clock at the spec's speedup instead of building a trace")
		gen     = fs.String("gen", "", "fabricate a corpus in this format (google-usage or azure-vm) instead of replaying")
		vms     = fs.Int("vms", 40, "with -gen: number of VMs")
		steps   = fs.Int("steps", 12, "with -gen: 15-minute grid steps per VM")
		samples = fs.Int("samples", 3, "with -gen: raw rows per grid step")
		seed    = fs.Int64("seed", 1, "with -gen: fabrication seed")
		gapP    = fs.Float64("gap-prob", 0, "with -gen: per-(VM,step) probability of a dropped step")
		emptyP  = fs.Float64("empty-prob", 0, "with -gen: per-row probability of an empty utilization field")
		gz      = fs.Bool("gzip", false, "with -gen: gzip the corpus")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *gen != "":
		cfg := trace.FabConfig{VMs: *vms, Steps: *steps, SamplesPerStep: *samples,
			Seed: *seed, GapProb: *gapP, EmptyProb: *emptyP}
		return runGen(*gen, cfg, *gz, *out, stdout)
	case *specP != "":
		sp, err := trace.LoadSpec(*specP)
		if err != nil {
			return err
		}
		if *pace {
			return runPace(sp, *out, stdout)
		}
		return runBuild(sp, *out, *provP, stdout)
	}
	return fmt.Errorf("nothing to do: pass -spec or -gen (see -h)")
}

// runGen fabricates a corpus.
func runGen(format string, cfg trace.FabConfig, gz bool, out string, stdout io.Writer) error {
	var w io.Writer = stdout
	var f *os.File
	if out != "" {
		var err error
		if f, err = os.Create(out); err != nil {
			return err
		}
		w = f
	}
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(w)
		w = zw
	}
	var rows int
	var err error
	switch format {
	case trace.FormatGoogleUsage:
		rows, err = trace.WriteGoogleUsage(w, cfg)
	case trace.FormatAzureVM:
		rows, err = trace.WriteAzureVM(w, cfg)
	default:
		err = fmt.Errorf("unknown -gen format %q (%s or %s)", format, trace.FormatGoogleUsage, trace.FormatAzureVM)
	}
	if err == nil && zw != nil {
		err = zw.Close()
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("fabricated %d %s rows (%d VMs × %d steps) → %s\n", rows, format, cfg.VMs, cfg.Steps, out)
	}
	return nil
}

// runBuild assembles the replayed trace and writes it plus provenance.
func runBuild(sp *trace.ReplaySpec, out, provP string, stdout io.Writer) error {
	tr, prov, err := sp.Build()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(stdout, "replayed %s: %d records → %d VMs × %d steps, %d distorted\n",
		prov.Source, prov.Records, tr.NumVMs(), tr.NumSteps(), prov.Distorted); err != nil {
		return err
	}
	for _, d := range prov.Distortions {
		if _, err := fmt.Fprintf(stdout, "  %-12s %-40s touched %d\n", d.Name, d.Params, d.Distorted); err != nil {
			return err
		}
	}
	if provP != "" {
		buf, err := json.MarshalIndent(prov, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(provP, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if strings.HasSuffix(out, ".gob") {
		err = tr.WriteGob(f)
	} else {
		err = tr.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runPace streams the distorted record stream against the wall clock —
// the one code path that paces. Output is CSV: vm,time_s,util.
func runPace(sp *trace.ReplaySpec, out string, stdout io.Writer) error {
	src, closer, err := sp.Open()
	if err != nil {
		return err
	}
	// The corpus is read-only; its close error carries no data loss.
	//lint:ignore errcheck read-side close
	defer closer.Close()
	pipeline, err := sp.Pipeline()
	if err != nil {
		return err
	}
	var w io.Writer = stdout
	var f *os.File
	if out != "" {
		if f, err = os.Create(out); err != nil {
			return err
		}
		w = f
	}
	speedup := sp.Speedup
	if speedup <= 0 {
		speedup = 1
	}
	stats, err := trace.Replay(src, trace.SinkFunc(func(r trace.Record) error {
		_, err := fmt.Fprintf(w, "%s,%g,%.6f\n", r.VM, r.Time, r.Util)
		return err
	}), trace.ReplayConfig{
		StepSeconds: sp.StepSeconds(),
		Seed:        sp.Seed,
		Distortions: pipeline,
		Pacer:       trace.NewPacer(speedup),
	})
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vdcreplay: streamed %d records (%.0f sim-seconds at %gx)\n",
		stats.Records, stats.SimSeconds, speedup)
	return nil
}
