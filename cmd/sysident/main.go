// Command sysident runs the system identification experiment of Section
// IV-B against the simulated two-tier application: it excites the CPU
// allocations pseudo-randomly, records the 90-percentile response time
// each control period, fits the ARX(1,2) model of Eq. (1), and reports
// the model with its fit quality.
//
// Usage:
//
//	sysident -concurrency 40 -periods 200 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"vdcpower/internal/appsim"
	"vdcpower/internal/devs"
	"vdcpower/internal/mat"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sysident: ")
	var (
		concurrency = flag.Int("concurrency", 40, "client concurrency level (ab -c)")
		periods     = flag.Int("periods", 200, "identification length in control periods")
		period      = flag.Float64("period", 4.0, "control period T in seconds")
		seed        = flag.Int64("seed", 1, "random seed")
		cmin        = flag.Float64("cmin", 0.3, "minimum excitation allocation (GHz)")
		cmax        = flag.Float64("cmax", 2.2, "maximum excitation allocation (GHz)")
		out         = flag.String("out", "", "write the identified model as JSON to this file")
	)
	flag.Parse()

	sim := devs.NewSimulator()
	app := appsim.New(sim, appsim.Config{
		Name: "rubbos",
		Tiers: []appsim.TierConfig{
			{DemandMean: 0.025, DemandCV: 1.0, InitialAllocation: 1.0},
			{DemandMean: 0.040, DemandCV: 1.0, InitialAllocation: 1.0},
		},
		Concurrency: *concurrency,
		ThinkTime:   1.0,
		Seed:        *seed,
	})
	app.Start()
	sim.RunUntil(40) // warm-up
	app.DrainResponseTimes()

	rng := rand.New(rand.NewSource(*seed + 99))
	ds := &sysid.Dataset{}
	fmt.Printf("exciting 2 tiers over [%.2f, %.2f] GHz for %d periods of %.1fs...\n",
		*cmin, *cmax, *periods, *period)
	for k := 0; k < *periods; k++ {
		c := mat.Vec{
			*cmin + (*cmax-*cmin)*rng.Float64(),
			*cmin + (*cmax-*cmin)*rng.Float64(),
		}
		t90 := stats.Percentile(app.DrainResponseTimes(), 90)
		if math.IsNaN(t90) {
			t90 = 0
		}
		ds.Append(t90, c)
		app.SetAllocation(0, c[0])
		app.SetAllocation(1, c[1])
		sim.RunUntil(sim.Now() + *period)
	}

	model, err := sysid.Identify(ds, 1, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := sysid.Evaluate(model, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nidentified model (Eq. 1 form):")
	fmt.Printf("  %s\n", model)
	fmt.Printf("\nfit: R²=%.3f fit%%=%.1f RMSE=%.3fs\n", fit.R2, fit.FitPct, fit.RMSE)
	fmt.Printf("stable (Σ|a|<1): %v\n", model.Stable())
	for i := 0; i < model.NumInputs; i++ {
		fmt.Printf("DC gain of tier %d allocation: %.3f s per GHz\n", i+1, model.DCGain(i))
	}
	if !model.Stable() {
		log.Fatal("identified model is unstable; increase -periods or widen excitation")
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote model to %s\n", *out)
	}
}
