// Custompolicy: implement the paper's administrator-defined migration
// cost interface (Section V, "cost-aware VM migration"). The policy here
// models a data center whose migration network is congested during
// business hours: migrations of large-memory VMs are only allowed when
// their power benefit pays a time-varying bandwidth price.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"vdcpower/internal/cluster"
	"vdcpower/internal/dcsim"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/workload"
)

// businessHoursPolicy is a custom optimizer.CostPolicy: migration cost
// scales with VM memory, and the price triples during business hours
// when the network is busy serving customers.
type businessHoursPolicy struct {
	baseWattsPerGB float64
	clock          func() float64 // simulation hour-of-day source
}

func (p *businessHoursPolicy) Allow(vm *cluster.VM, from, to *cluster.Server, benefitWatts float64) bool {
	price := p.baseWattsPerGB
	if h := p.clock(); h >= 8 && h < 18 {
		price *= 3
	}
	return benefitWatts >= vm.MemoryGB*price
}

func (p *businessHoursPolicy) Name() string { return "business-hours" }

func main() {
	log.SetFlags(0)
	trace, err := workload.Generate(workload.GenConfig{
		NumVMs: 120, Days: 2, StepsPerHour: 4, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A simulation-step clock shared with the policy. dcsim invokes the
	// optimizer every 16 steps of 15 minutes, so tracking invocations is
	// enough to know the hour of day.
	step := 0
	clock := func() float64 { return float64(step%96) / 4.0 }

	run := func(name string, policy optimizer.CostPolicy) dcsim.Result {
		ipac := optimizer.NewIPAC()
		ipac.Policy = policy
		cfg := dcsim.DefaultConfig(trace, 120, wrapped{ipac, func() { step += cfg0OptimizeEvery }})
		res, err := dcsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s energy/VM %7.1f Wh   migrations %4d   vetoed %4d\n",
			name, res.EnergyPerVMWh, res.Migrations, res.Vetoed)
		return res
	}

	fmt.Println("IPAC under different migration cost policies:")
	step = 0
	free := run("allow-all", optimizer.AllowAll{})
	step = 0
	priced := run("business-hours", &businessHoursPolicy{baseWattsPerGB: 8, clock: clock})
	step = 0
	denied := run("deny-all", optimizer.DenyAll{})

	fmt.Printf("\nthe custom policy vetoed %d daytime migrations and still recovered %.0f%%\n",
		priced.Vetoed,
		100*(denied.EnergyPerVMWh-priced.EnergyPerVMWh)/(denied.EnergyPerVMWh-free.EnergyPerVMWh))
	fmt.Println("of the energy saving that unrestricted migration achieves.")
}

// cfg0OptimizeEvery mirrors dcsim.DefaultConfig's optimizer interval.
const cfg0OptimizeEvery = 16

// wrapped ticks the example's clock every optimizer invocation.
type wrapped struct {
	inner  optimizer.Consolidator
	onCall func()
}

func (w wrapped) Consolidate(dc *cluster.DataCenter) (optimizer.Report, error) {
	w.onCall()
	return w.inner.Consolidate(dc)
}
func (w wrapped) UsesDVFS() bool { return w.inner.UsesDVFS() }
func (w wrapped) Name() string   { return w.inner.Name() }
