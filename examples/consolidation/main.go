// Consolidation: compare IPAC against the pMapper baseline on a small
// data center replaying a diurnal utilization trace, and print the
// energy-per-VM outcome — a miniature Figure 6.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"vdcpower/internal/dcsim"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/workload"
)

func main() {
	log.SetFlags(0)

	// Two days of 15-minute utilization samples for 150 VMs across the
	// four industry sectors.
	trace, err := workload.Generate(workload.GenConfig{
		NumVMs: 150, Days: 2, StepsPerHour: 4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d VMs × %d steps of trace\n\n", trace.NumVMs(), trace.NumSteps())

	type entry struct {
		cons     optimizer.Consolidator
		peakProv bool // static placement must provision for peak demand
	}
	for _, e := range []entry{
		{cons: optimizer.NewIPAC()},
		{cons: optimizer.NewPMapper()},
		{cons: optimizer.WithoutDVFS{Inner: optimizer.NewIPAC()}},
		{cons: optimizer.NoOp{DVFS: true}, peakProv: true},
	} {
		cfg := dcsim.DefaultConfig(trace, 150, e.cons)
		cfg.ProvisionPeak = e.peakProv
		res, err := dcsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s energy/VM %8.1f Wh   migrations %4d   mean active %5.1f   overloaded server-steps %d\n",
			e.cons.Name(), res.EnergyPerVMWh, res.Migrations, res.MeanActive, res.OverloadSteps)
	}

	fmt.Println("\nIPAC packs VMs onto the most power-efficient servers with the")
	fmt.Println("Minimum Slack search and throttles the rest with DVFS; pMapper's")
	fmt.Println("first-fit packing and lack of DVFS leave power on the table, and")
	fmt.Println("a static placement must provision for peak to avoid overload.")
}
