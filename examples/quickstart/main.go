// Quickstart: put one simulated two-tier web application under a MIMO
// response time controller and watch the 90-percentile response time
// converge to the SLA set point.
//
// This exercises the full application-level pipeline of the paper:
// system identification (Eq. 1) → MPC controller (Section IV-B) →
// closed-loop control of a processor-sharing application model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"vdcpower/internal/appsim"
	"vdcpower/internal/core"
	"vdcpower/internal/devs"
	"vdcpower/internal/mat"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
)

func main() {
	log.SetFlags(0)
	const (
		period   = 4.0 // control period T, seconds
		setpoint = 1.0 // 90-percentile response time target, seconds
	)

	// A two-tier application (web + database) with 40 closed-loop
	// clients, as in the paper's RUBBoS testbed.
	sim := devs.NewSimulator()
	app := appsim.New(sim, appsim.Config{
		Name: "shop",
		Tiers: []appsim.TierConfig{
			{DemandMean: 0.025, DemandCV: 1.0, InitialAllocation: 0.8}, // web
			{DemandMean: 0.040, DemandCV: 1.0, InitialAllocation: 0.8}, // db
		},
		Concurrency: 40,
		ThinkTime:   1.0,
		Seed:        7,
	})
	app.Start()

	// Step 1 — system identification: excite the CPU allocations and fit
	// the ARX model of Eq. (1).
	fmt.Println("identifying the response time model...")
	sim.RunUntil(40)
	app.DrainResponseTimes()
	rng := rand.New(rand.NewSource(42))
	ds := &sysid.Dataset{}
	for k := 0; k < 120; k++ {
		c := mat.Vec{0.3 + 1.6*rng.Float64(), 0.3 + 1.6*rng.Float64()}
		t90 := stats.Percentile(app.DrainResponseTimes(), 90)
		if math.IsNaN(t90) {
			t90 = 0
		}
		ds.Append(t90, c)
		app.SetAllocation(0, c[0])
		app.SetAllocation(1, c[1])
		sim.RunUntil(sim.Now() + period)
	}
	model, err := sysid.Identify(ds, 1, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n\n", model)

	// Step 2 — attach the response time controller.
	ctl, err := core.NewResponseTimeController(app, core.DefaultControllerConfig(model, setpoint))
	if err != nil {
		log.Fatal(err)
	}

	// Step 3 — closed-loop control.
	fmt.Printf("%8s %14s %12s %12s\n", "time(s)", "p90 resp (ms)", "web (GHz)", "db (GHz)")
	for k := 0; k < 60; k++ {
		sim.RunUntil(sim.Now() + period)
		res, err := ctl.Step()
		if err != nil {
			log.Fatal(err)
		}
		if k%5 == 0 {
			fmt.Printf("%8.0f %14.0f %12.2f %12.2f\n",
				sim.Now(), res.T90*1000, res.Allocations[0], res.Allocations[1])
		}
	}
	fmt.Printf("\ntarget was %.0f ms — the controller holds the SLA while\n", setpoint*1000)
	fmt.Println("allocating only as much CPU as the workload needs.")
}
