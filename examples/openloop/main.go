// Openloop: the response time controller under open (Poisson) traffic
// instead of the paper's closed-loop clients. The arrival rate ramps up
// hour by hour; the controller keeps the 90-percentile response time at
// the SLA while allocating just enough CPU for the current rate.
//
//	go run ./examples/openloop
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"vdcpower/internal/appsim"
	"vdcpower/internal/core"
	"vdcpower/internal/devs"
	"vdcpower/internal/mat"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
)

const (
	period   = 4.0
	setpoint = 0.5 // 500 ms: open traffic has no think-time ceiling
)

func main() {
	log.SetFlags(0)
	sim := devs.NewSimulator()
	app := appsim.New(sim, appsim.Config{
		Name: "api",
		Tiers: []appsim.TierConfig{
			{DemandMean: 0.020, DemandCV: 1.0, InitialAllocation: 1.0},
			{DemandMean: 0.030, DemandCV: 1.0, InitialAllocation: 1.0},
		},
		Concurrency: 0, // all traffic comes from the open source
		ThinkTime:   1.0,
		Seed:        2,
	})
	src := appsim.NewOpenWorkload(sim, app, 15, 3)
	src.Start()

	// Identify under mid-range traffic.
	fmt.Println("identifying under 15 req/s...")
	sim.RunUntil(40)
	app.DrainResponseTimes()
	rng := rand.New(rand.NewSource(8))
	ds := &sysid.Dataset{}
	for k := 0; k < 120; k++ {
		// Keep every tier clearly above the open-system stability
		// threshold (rate x demand = 0.3/0.45 GHz): unlike the paper's
		// closed clients, open queues diverge at full utilization.
		c := mat.Vec{0.7 + 1.8*rng.Float64(), 0.7 + 1.8*rng.Float64()}
		t90 := stats.Percentile(app.DrainResponseTimes(), 90)
		if math.IsNaN(t90) {
			t90 = 0
		}
		ds.Append(t90, c)
		app.SetAllocation(0, c[0])
		app.SetAllocation(1, c[1])
		sim.RunUntil(sim.Now() + period)
	}
	model, err := sysid.Identify(ds, 1, 2, 2)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultControllerConfig(model, setpoint)
	cfg.CMin = mat.Vec{0.4, 0.4} // never starve a tier: open queues diverge
	cfg.CMax = mat.Vec{6, 6}
	ctl, err := core.NewResponseTimeController(app, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%10s %10s %14s %14s\n", "rate(r/s)", "p90 (ms)", "web (GHz)", "db (GHz)")
	for _, rate := range []float64{10, 20, 35, 50, 35, 15} {
		src.SetRate(rate)
		var tail []float64
		var alloc []float64
		for k := 0; k < 75; k++ { // ~5 min per rate level
			sim.RunUntil(sim.Now() + period)
			res, err := ctl.Step()
			if err != nil {
				log.Fatal(err)
			}
			if k >= 40 {
				tail = append(tail, res.T90)
				alloc = res.Allocations
			}
		}
		fmt.Printf("%10.0f %10.0f %14.2f %14.2f\n",
			rate, 1000*stats.Mean(tail), alloc[0], alloc[1])
	}
	fmt.Println("\nThe allocations track the arrival rate while the p90 holds near")
	fmt.Printf("the %.0f ms SLA — right-sizing that DVFS then turns into power savings.\n", setpoint*1000)
}
