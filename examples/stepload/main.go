// Stepload: reproduce the Figure 3 scenario — a multi-tier application
// under MPC control absorbs a sudden workload surge (concurrency 40→80,
// the "breaking news" event) while the cluster's power follows the
// allocated CPU.
//
//	go run ./examples/stepload
package main

import (
	"fmt"
	"log"
	"strings"

	"vdcpower/internal/report"
	"vdcpower/internal/testbed"
)

func main() {
	log.SetFlags(0)
	cfg := testbed.DefaultConfig()
	cfg.NumApps = 4 // smaller testbed keeps the demo quick
	cfg.NumServers = 2

	fmt.Println("building testbed and running system identification...")
	res, err := testbed.Fig3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload of %s doubles during t ∈ [%.0f, %.0f) s\n\n",
		res.AppLabel, res.StepStart, res.StepEnd)

	fmt.Printf("%8s  %14s  %10s  %s\n", "time(s)", "p90 resp (ms)", "power (W)", "response time (* = 200ms)")
	for i, p := range res.ResponseTime {
		if i%10 != 0 {
			continue
		}
		bars := int(p.Value * 5) // one star per 200 ms
		if bars > 30 {
			bars = 30
		}
		marker := ""
		if p.Time >= res.StepStart && p.Time < res.StepEnd {
			marker = " <- surge"
		}
		fmt.Printf("%8.0f  %14.0f  %10.1f  %s%s\n",
			p.Time, p.Value*1000, res.Power[i].Value, strings.Repeat("*", bars), marker)
	}

	var rts, pws []float64
	for i := range res.ResponseTime {
		rts = append(rts, res.ResponseTime[i].Value)
		pws = append(pws, res.Power[i].Value)
	}
	fmt.Printf("\nresponse time  %s\n", report.Sparkline(rts))
	fmt.Printf("cluster power  %s\n", report.Sparkline(pws))
	fmt.Printf("               ^ surge t∈[600,1200)s — spike, recovery, power following\n")

	fmt.Println("\nThe spike at t=600s is the surge hitting; the controller re-allocates")
	fmt.Println("CPU to both tiers within a few control periods, the response time")
	fmt.Println("returns to the 1000 ms set point, and power rises only as much as")
	fmt.Println("the extra CPU requires (then falls back after t=1200s).")
}
