// Adaptive: online re-identification with recursive least squares. The
// application's per-request CPU demand triples mid-run (a workload-mix
// change — think a software release that makes queries heavier). A static
// controller keeps steering with the stale model; the adaptive controller
// re-fits the ARX model from live data and swaps it into the MPC.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"vdcpower/internal/appsim"
	"vdcpower/internal/core"
	"vdcpower/internal/devs"
	"vdcpower/internal/mat"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
)

const (
	period   = 4.0
	setpoint = 1.0
)

func buildApp(sim *devs.Simulator) *appsim.App {
	app := appsim.New(sim, appsim.Config{
		Name: "adaptive-demo",
		Tiers: []appsim.TierConfig{
			{DemandMean: 0.020, DemandCV: 1.0, InitialAllocation: 0.8},
			{DemandMean: 0.030, DemandCV: 1.0, InitialAllocation: 0.8},
		},
		Concurrency: 40,
		ThinkTime:   1.0,
		Seed:        3,
	})
	app.Start()
	return app
}

func identify(sim *devs.Simulator, app *appsim.App, seed int64) *sysid.Model {
	rng := rand.New(rand.NewSource(seed))
	sim.RunUntil(sim.Now() + 40)
	app.DrainResponseTimes()
	ds := &sysid.Dataset{}
	for k := 0; k < 100; k++ {
		c := mat.Vec{0.3 + 1.4*rng.Float64(), 0.3 + 1.4*rng.Float64()}
		t90 := stats.Percentile(app.DrainResponseTimes(), 90)
		if math.IsNaN(t90) {
			t90 = 0
		}
		ds.Append(t90, c)
		app.SetAllocation(0, c[0])
		app.SetAllocation(1, c[1])
		sim.RunUntil(sim.Now() + period)
	}
	model, err := sysid.Identify(ds, 1, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	return model
}

// run executes 240 periods with the demand tripling at period 80, and
// returns the mean |T90 − setpoint| over the post-change second half.
func run(adaptive bool) (float64, int) {
	sim := devs.NewSimulator()
	app := buildApp(sim)
	model := identify(sim, app, 17)
	base := core.DefaultControllerConfig(model, setpoint)
	base.CMax = mat.Vec{6, 6} // headroom for the 3× heavier workload

	var step func() (core.StepResult, error)
	var refits func() int
	if adaptive {
		ac, err := core.NewAdaptiveController(app, core.DefaultAdaptiveConfig(base))
		if err != nil {
			log.Fatal(err)
		}
		step = ac.Step
		refits = ac.Refits
	} else {
		c, err := core.NewResponseTimeController(app, base)
		if err != nil {
			log.Fatal(err)
		}
		step = c.Step
		refits = func() int { return 0 }
	}

	errSum, errN := 0.0, 0
	for k := 0; k < 240; k++ {
		if k == 80 {
			// The mix change: every request gets 3× heavier.
			app.SetDemandMean(0, 3*app.DemandMean(0))
			app.SetDemandMean(1, 3*app.DemandMean(1))
		}
		sim.RunUntil(sim.Now() + period)
		res, err := step()
		if err != nil {
			log.Fatal(err)
		}
		if k >= 160 { // steady state after the change
			errSum += math.Abs(res.T90 - setpoint)
			errN++
		}
	}
	return errSum / float64(errN), refits()
}

func main() {
	log.SetFlags(0)
	fmt.Println("workload-mix change at period 80: per-request CPU demand ×3")
	fmt.Println()
	staticErr, _ := run(false)
	adaptiveErr, refits := run(true)
	fmt.Printf("%-22s mean |T90 - 1000ms| after change: %4.0f ms\n", "static model:", staticErr*1000)
	fmt.Printf("%-22s mean |T90 - 1000ms| after change: %4.0f ms  (%d model refits)\n",
		"adaptive model:      ", adaptiveErr*1000, refits)
	fmt.Println()
	fmt.Println("Feedback alone corrects steady-state offset, but the stale gains make")
	fmt.Println("the static loop sluggish/noisy after the change; the adaptive controller")
	fmt.Println("re-identifies the plant online and recovers crisper tracking.")
}
