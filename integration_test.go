// End-to-end integration tests: the paper's headline claims exercised
// through the public harnesses at reduced scale. These are the
// acceptance tests a release would gate on; the per-figure detail lives
// in bench_test.go and EXPERIMENTS.md.
package vdcpower_test

import (
	"math"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/dcsim"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/stats"
	"vdcpower/internal/testbed"
	"vdcpower/internal/workload"
)

// Claim 1 (Section VII-A): the MIMO response time controller holds every
// application's 90-percentile response time at the SLA set point.
func TestClaimResponseTimeAssurance(t *testing.T) {
	cfg := testbed.DefaultConfig()
	cfg.NumApps = 4
	cfg.NumServers = 2
	rows, err := testbed.Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.Mean-cfg.Setpoint) > 0.2 {
			t.Errorf("%s: mean %v strays from set point %v", r.Label, r.Mean, cfg.Setpoint)
		}
	}
}

// Claim 2 (Section VII-A, Fig. 3): a doubled workload is absorbed within
// a few control periods while an uncontrolled system violates for the
// whole surge.
func TestClaimSurgeAbsorption(t *testing.T) {
	cfg := testbed.DefaultConfig()
	cfg.NumApps = 4
	cfg.NumServers = 2
	controlled, err := testbed.Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	static, err := testbed.Fig3Static(cfg)
	if err != nil {
		t.Fatal(err)
	}
	late := func(res *testbed.Fig3Result) []float64 {
		var xs []float64
		for _, p := range res.ResponseTime {
			if p.Time >= 800 && p.Time < 1200 {
				xs = append(xs, p.Value)
			}
		}
		return xs
	}
	ctl := stats.Mean(late(controlled))
	st := stats.Mean(late(static))
	if math.Abs(ctl-cfg.Setpoint) > 0.4 {
		t.Errorf("controlled surge mean %v off set point", ctl)
	}
	if st < 2*ctl {
		t.Errorf("static surge mean %v not clearly worse than controlled %v", st, ctl)
	}
}

// Claim 3 (Section VII-B, Fig. 6): IPAC consumes less energy per VM than
// pMapper, with both trends preserved across data-center sizes.
func TestClaimIPACEnergySavings(t *testing.T) {
	tr, err := workload.Generate(workload.GenConfig{NumVMs: 200, Days: 2, StepsPerHour: 4, Seed: 2008})
	if err != nil {
		t.Fatal(err)
	}
	points, err := dcsim.Fig6Parallel(tr, []int{50, 200}, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		saving := 1 - p.PerVMWh["IPAC"]/p.PerVMWh["pMapper"]
		if saving < 0.05 {
			t.Errorf("n=%d: IPAC saving %.1f%% too small", p.NumVMs, 100*saving)
		}
	}
}

// Claim 4 (Section III): the two levels integrate — consolidation on the
// long time scale saves power without breaking the short-time-scale SLAs.
func TestClaimIntegratedTwoLevels(t *testing.T) {
	cfg := testbed.DefaultConfig()
	cfg.NumApps = 6
	tb, err := testbed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOptimizer(optimizer.NewIPAC(), 40, cluster.DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
	recs, err := tb.Run(800, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tb.DC.NumActive() >= len(tb.DC.Servers) {
		t.Error("consolidation never slept a server")
	}
	tail := recs[len(recs)-40:]
	for i := range tb.Apps {
		var xs []float64
		for _, r := range tail {
			xs = append(xs, r.T90[i])
		}
		if m := stats.Mean(xs); math.Abs(m-cfg.Setpoint) > 0.45 {
			t.Errorf("app %d SLA broken under consolidation: %v", i, m)
		}
	}
}
